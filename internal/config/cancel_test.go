package config

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/workload"
)

// contextPlannerRuns enumerates the context-aware planner entry points
// so the cancellation tests can sweep them uniformly. The annealing
// iteration budget is effectively unbounded: a run that ignores its
// context would take minutes, so a hung cancellation fails the test by
// timeout instead of passing by luck.
func contextPlannerRuns(a *analysisHarness) []struct {
	name string
	run  func(context.Context, Options) (*Recommendation, error)
} {
	goals := a.goals
	cons := a.cons
	return []struct {
		name string
		run  func(context.Context, Options) (*Recommendation, error)
	}{
		{"greedy", func(ctx context.Context, o Options) (*Recommendation, error) {
			return GreedyContext(ctx, a.a, goals, cons, o)
		}},
		{"exhaustive", func(ctx context.Context, o Options) (*Recommendation, error) {
			return ExhaustiveContext(ctx, a.a, goals, cons, o)
		}},
		{"branch&bound", func(ctx context.Context, o Options) (*Recommendation, error) {
			return BranchAndBoundContext(ctx, a.a, goals, cons, o)
		}},
		{"annealing", func(ctx context.Context, o Options) (*Recommendation, error) {
			return SimulatedAnnealingContext(ctx, a.a, goals, cons, o, AnnealingOptions{Seed: 7, Iterations: 100_000_000})
		}},
	}
}

type analysisHarness struct {
	a     *perf.Analysis
	goals Goals
	cons  Constraints
}

// TestPlannersReturnCanceledImmediately pins the contract on an
// already-dead context: every planner returns context.Canceled without
// producing a recommendation.
func TestPlannersReturnCanceledImmediately(t *testing.T) {
	h := &analysisHarness{
		a:     workloadAnalysis(t, workload.EPWorkflow(5)),
		goals: Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5},
		cons:  Constraints{MaxReplicas: []int{6, 6, 6}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range contextPlannerRuns(h) {
		rec, err := p.run(ctx, DefaultOptions())
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", p.name, err)
		}
		if rec != nil {
			t.Errorf("%s: returned a recommendation from a canceled search", p.name)
		}
	}
}

// countdownCtx is a context that reports cancellation after a fixed
// number of Err() polls — a deterministic way to cancel a planner
// mid-search regardless of how fast the machine assesses candidates.
// The planners and the evaluator poll Err() between units of work (they
// never select on Done), so the countdown lands inside the search by
// construction.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestPlannersCancelMidSearch cancels each planner while its search is
// in flight — deterministically, after a handful of successful context
// polls — and requires context.Canceled back promptly. Crucially, the
// interrupted run must leave the shared evaluator reusable: the
// follow-up search over the same evaluator reproduces the
// fresh-evaluator result bit for bit.
func TestPlannersCancelMidSearch(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5))
	goals := Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	h := &analysisHarness{a: a, goals: goals, cons: Constraints{MaxReplicas: []int{6, 6, 6}}}

	fresh, err := Greedy(a, goals, Constraints{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range contextPlannerRuns(h) {
		t.Run(p.name, func(t *testing.T) {
			opts := DefaultOptions()
			ev, err := performability.NewEvaluator(a, opts.Performability)
			if err != nil {
				t.Fatal(err)
			}
			opts.Evaluator = ev

			rec, err := p.run(newCountdownCtx(10), opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rec != nil {
				t.Fatal("canceled search returned a recommendation")
			}

			// The evaluator the canceled search warmed stays consistent:
			// a greedy run over it matches the fresh-evaluator result
			// exactly.
			after, err := Greedy(a, goals, Constraints{}, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertRecommendationsIdentical(t, p.name+" after cancel", fresh, after)
		})
	}
}

// TestAssessContextCanceled covers the single-candidate entry point.
func TestAssessContextCanceled(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AssessContext(ctx, a, perf.Config{Replicas: []int{3, 3, 4}}, Goals{MaxUnavailability: 1e-5}, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
