package config

import (
	"context"
	"fmt"
	"math"

	"performa/internal/dist"
	"performa/internal/perf"
	"performa/internal/wfmserr"
)

// The paper notes that the configuration search "may eventually entail
// full-fledged algorithms for mathematical optimization such as
// branch-and-bound or simulated annealing" (Section 7.2). This file
// implements both as alternatives to the greedy heuristic.
//
// Both exploit (and their correctness depends on) the monotonicity of
// the models: adding a replica to any server type never worsens any
// waiting time or the availability, so feasibility is upward-closed in
// the replication vector.

// BranchAndBound finds the minimum-cost feasible configuration by
// depth-first search over replication vectors with two prunings:
//
//   - cost bound: a partial assignment whose cost plus the remaining
//     types' lower bounds cannot beat the incumbent is cut;
//   - feasibility bound: if the partial assignment is infeasible even
//     with every remaining type at its upper bound, no completion can be
//     feasible (monotonicity) and the subtree is cut.
//
// It returns the same optimum as Exhaustive with far fewer evaluations.
func BranchAndBound(a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	return BranchAndBoundContext(context.Background(), a, goals, cons, opts)
}

// BranchAndBoundContext is BranchAndBound with cancellation: a done
// context unwinds the depth-first search and returns ctx.Err(),
// discarding the incumbent.
func BranchAndBoundContext(ctx context.Context, a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	k := a.Env().K()
	if err := goals.validate(k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	lo, hi, err := cons.bounds(k)
	if err != nil {
		return nil, err
	}

	rec := &Recommendation{}
	bestCost := math.MaxInt
	var best *Assessment

	// The engine memoizes assessments under the shared compact state
	// key (the feasibility probe and the leaf test revisit vectors) and
	// parallelizes the per-state evaluations inside each candidate.
	eng, err := newEngine(a, goals, opts, opts.workerCount())
	if err != nil {
		return nil, err
	}
	assessCached := func(y []int) (*Assessment, error) { return eng.assess(ctx, y) }

	y := append([]int(nil), lo...)
	var dfs func(x, costSoFar int) error
	dfs = func(x, costSoFar int) error {
		if x == k {
			as, err := assessCached(y)
			if err != nil {
				return err
			}
			if as.Feasible() && costSoFar < bestCost {
				bestCost = costSoFar
				best = as
			}
			return nil
		}
		// Remaining lower-bound cost.
		restLo := 0
		for j := x + 1; j < k; j++ {
			restLo += lo[j]
		}
		for v := lo[x]; v <= hi[x]; v++ {
			if costSoFar+v+restLo >= bestCost {
				break // increasing v only raises the cost
			}
			y[x] = v
			// Feasibility probe: max out the remaining types.
			probe := append([]int(nil), y[:x+1]...)
			for j := x + 1; j < k; j++ {
				probe = append(probe, hi[j])
			}
			as, err := assessCached(probe)
			if err != nil {
				return err
			}
			if !as.Feasible() {
				continue // no completion with Y_x = v can be feasible
			}
			if err := dfs(x+1, costSoFar+v); err != nil {
				return err
			}
		}
		y[x] = lo[x]
		return nil
	}
	if err := dfs(0, 0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, wfmserr.New(wfmserr.CodeInfeasible, "config", "no feasible configuration within constraints")
	}
	rec.Config = best.Config.Clone()
	rec.Cost = best.Config.TotalServers()
	rec.Assessment = best
	rec.Evaluations = int(eng.computed.Load())
	eng.stamp(rec)
	return rec, nil
}

// AnnealingOptions tunes SimulatedAnnealing.
type AnnealingOptions struct {
	// Seed makes runs reproducible.
	Seed uint64
	// Iterations is the total number of proposed moves; zero means
	// 4000.
	Iterations int
	// InitialTemp and FinalTemp bound the geometric cooling schedule
	// in energy units (server counts); zeros mean 8 and 0.05.
	InitialTemp, FinalTemp float64
	// InfeasiblePenalty is the energy cost of violating a goal,
	// per unit of log-scale violation; zero means 50.
	InfeasiblePenalty float64
}

func (o AnnealingOptions) withDefaults() AnnealingOptions {
	if o.Iterations <= 0 {
		o.Iterations = 4000
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = 8
	}
	if o.FinalTemp <= 0 {
		o.FinalTemp = 0.05
	}
	if o.InfeasiblePenalty <= 0 {
		o.InfeasiblePenalty = 50
	}
	return o
}

// SimulatedAnnealing searches the configuration space with ±1 moves on
// random server types under a geometric cooling schedule. The energy of
// a configuration is its server count plus a penalty proportional to the
// logarithmic violation of each goal, so the walk is guided towards
// feasibility first and cost second. The best feasible configuration
// seen is returned; if none is found the search fails.
//
// Annealing does not certify optimality — it exists for cost landscapes
// the greedy heuristic navigates poorly (tight coupled goals, holes cut
// by Fixed constraints) and as the paper's named alternative.
func SimulatedAnnealing(a *perf.Analysis, goals Goals, cons Constraints, opts Options, sa AnnealingOptions) (*Recommendation, error) {
	return SimulatedAnnealingContext(context.Background(), a, goals, cons, opts, sa)
}

// SimulatedAnnealingContext is SimulatedAnnealing with cancellation: a
// done context stops the walk and returns ctx.Err(), discarding the best
// configuration seen so far.
func SimulatedAnnealingContext(ctx context.Context, a *perf.Analysis, goals Goals, cons Constraints, opts Options, sa AnnealingOptions) (*Recommendation, error) {
	k := a.Env().K()
	if err := goals.validate(k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	sa = sa.withDefaults()
	lo, hi, err := cons.bounds(k)
	if err != nil {
		return nil, err
	}
	rng := dist.NewRNG(sa.Seed)

	eng, err := newEngine(a, goals, opts, opts.workerCount())
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{}
	energy := func(as *Assessment) float64 {
		e := float64(as.Config.TotalServers())
		// Log-scale goal violations keep the gradient informative
		// across orders of magnitude.
		for x, w := range as.Perf.Waiting {
			limit := goals.waitingLimit(x)
			if math.IsInf(limit, 1) {
				continue
			}
			if math.IsInf(w, 1) {
				e += sa.InfeasiblePenalty * 4
			} else if w > limit {
				e += sa.InfeasiblePenalty * math.Log(w/limit+1)
			}
		}
		if goals.MaxUnavailability > 0 && as.Unavailability > goals.MaxUnavailability {
			e += sa.InfeasiblePenalty * math.Log(as.Unavailability/goals.MaxUnavailability+1)
		}
		return e
	}
	evaluate := func(y []int) (*Assessment, float64, error) {
		// The memoized engine makes revisits (the annealer walks a small
		// neighbourhood repeatedly) nearly free without changing any
		// result: cached assessments are the exact values a fresh
		// evaluation would produce.
		as, err := eng.assess(ctx, y)
		if err != nil {
			return nil, 0, err
		}
		rec.Evaluations++
		return as, energy(as), nil
	}

	// Start from the constraint floor.
	cur := append([]int(nil), lo...)
	curAs, curE, err := evaluate(cur)
	if err != nil {
		return nil, err
	}
	var best *Assessment
	bestCost := math.MaxInt
	note := func(as *Assessment) {
		if as.Feasible() {
			if c := as.Config.TotalServers(); c < bestCost {
				bestCost = c
				best = as
			}
		}
	}
	note(curAs)

	cooling := math.Pow(sa.FinalTemp/sa.InitialTemp, 1/float64(sa.Iterations))
	temp := sa.InitialTemp
	for iter := 0; iter < sa.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := rng.Intn(k)
		delta := 1
		if rng.Float64() < 0.5 {
			delta = -1
		}
		next := cur[x] + delta
		if next < lo[x] || next > hi[x] {
			temp *= cooling
			continue
		}
		cand := append([]int(nil), cur...)
		cand[x] = next
		candAs, candE, err := evaluate(cand)
		if err != nil {
			return nil, err
		}
		note(candAs)
		if candE <= curE || rng.Float64() < math.Exp((curE-candE)/temp) {
			cur, curE = cand, candE
		}
		temp *= cooling
	}
	if best == nil {
		return nil, fmt.Errorf("config: simulated annealing found no feasible configuration in %d iterations", sa.Iterations)
	}
	rec.Config = best.Config.Clone()
	rec.Cost = best.Config.TotalServers()
	rec.Assessment = best
	eng.stamp(rec)
	return rec, nil
}
