// Package config implements the configuration tool of Section 7: given
// performability and availability goals, it searches the space of
// replication vectors for a (near-)minimum-cost configuration that meets
// them. The paper's greedy heuristic (Section 7.2) is the primary
// algorithm; an exhaustive minimum-cost search serves as the optimality
// baseline the benchmarks compare against.
package config

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"performa/internal/avail"
	"performa/internal/linalg"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/wfmserr"
)

// Goals are the administrator-specified targets of Section 7.1.
type Goals struct {
	// MaxWaiting is the tolerance threshold for the mean waiting time
	// of service requests (applied to every server type's W^Y entry).
	// Zero disables the performability goal.
	MaxWaiting float64
	// MaxUnavailability is the tolerance threshold for the WFMS
	// unavailability (e.g. 1e-5 ≈ 5.3 min/year). Zero disables the
	// availability goal.
	MaxUnavailability float64
	// PerTypeMaxWaiting optionally refines MaxWaiting per server type
	// (Section 7.1's server-type-specific goals); entries ≤ 0 fall
	// back to MaxWaiting.
	PerTypeMaxWaiting []float64
	// PerWorkflowMaxDelay optionally bounds, per workflow type, the
	// expected total queueing delay one instance accrues across all its
	// service requests (Σ_x r_{x,i}·W_x) — Section 7.1's
	// workflow-type-specific goal refinement. Entries ≤ 0 disable the
	// goal for that workflow; the slice length must match the analysis'
	// workflow count.
	PerWorkflowMaxDelay []float64
}

func (g Goals) validate(k int) error {
	if g.MaxWaiting < 0 || g.MaxUnavailability < 0 {
		return fmt.Errorf("config: goals must be nonnegative, got waiting %v, unavailability %v", g.MaxWaiting, g.MaxUnavailability)
	}
	if g.MaxUnavailability >= 1 {
		return fmt.Errorf("config: unavailability goal %v must be below 1", g.MaxUnavailability)
	}
	if g.MaxWaiting == 0 && g.MaxUnavailability == 0 && g.PerWorkflowMaxDelay == nil {
		return fmt.Errorf("config: no goal specified")
	}
	if g.PerTypeMaxWaiting != nil && len(g.PerTypeMaxWaiting) != k {
		return fmt.Errorf("config: %d per-type waiting goals for %d server types", len(g.PerTypeMaxWaiting), k)
	}
	return nil
}

// waitingLimit returns the effective waiting-time goal for type x, or
// +Inf when no goal applies.
func (g Goals) waitingLimit(x int) float64 {
	if g.PerTypeMaxWaiting != nil && x < len(g.PerTypeMaxWaiting) && g.PerTypeMaxWaiting[x] > 0 {
		return g.PerTypeMaxWaiting[x]
	}
	if g.MaxWaiting > 0 {
		return g.MaxWaiting
	}
	return math.Inf(1)
}

// Constraints bound the search space (Section 7.1's "specific
// constraints such as limiting or fixing the degree of replication of
// particular server types").
type Constraints struct {
	// MinReplicas gives per-type lower bounds; nil means 1 everywhere.
	MinReplicas []int
	// MaxReplicas gives per-type upper bounds; nil or zero entries mean
	// the default cap of 64.
	MaxReplicas []int
	// Fixed pins types to exact replication degrees; nil or negative
	// entries leave the type free.
	Fixed []int
	// StartFrom optionally warm-starts the greedy search at an existing
	// configuration — typically the currently deployed one, for
	// incremental re-planning after drift — instead of the constraint
	// floor. Entries are clamped into the [min, max] bounds. A
	// warm-started greedy may also remove replicas: once the candidate
	// is feasible it trims replicas whose removal keeps every goal met
	// (one per iteration, the cut that leaves the most goal headroom
	// first), so a drift that relaxed the load releases servers instead
	// of only ever growing. nil preserves the classic floor start, whose
	// result is unchanged. Exhaustive and branch-and-bound enumerate the
	// full space regardless and ignore this field.
	StartFrom []int
}

const defaultMaxReplicas = 64

func (c Constraints) bounds(k int) (lo, hi []int, err error) {
	lo = make([]int, k)
	hi = make([]int, k)
	for x := 0; x < k; x++ {
		lo[x] = 1
		hi[x] = defaultMaxReplicas
	}
	if c.MinReplicas != nil {
		if len(c.MinReplicas) != k {
			return nil, nil, fmt.Errorf("config: %d minimum replicas for %d server types", len(c.MinReplicas), k)
		}
		for x, m := range c.MinReplicas {
			if m < 0 {
				return nil, nil, fmt.Errorf("config: negative minimum replicas for type %d", x)
			}
			if m > lo[x] {
				lo[x] = m
			}
		}
	}
	if c.MaxReplicas != nil {
		if len(c.MaxReplicas) != k {
			return nil, nil, fmt.Errorf("config: %d maximum replicas for %d server types", len(c.MaxReplicas), k)
		}
		for x, m := range c.MaxReplicas {
			if m > 0 {
				hi[x] = m
			}
		}
	}
	if c.Fixed != nil {
		if len(c.Fixed) != k {
			return nil, nil, fmt.Errorf("config: %d fixed degrees for %d server types", len(c.Fixed), k)
		}
		for x, f := range c.Fixed {
			if f >= 0 {
				lo[x], hi[x] = f, f
			}
		}
	}
	for x := 0; x < k; x++ {
		if lo[x] > hi[x] {
			return nil, nil, fmt.Errorf("config: type %d has contradictory bounds [%d, %d]", x, lo[x], hi[x])
		}
	}
	return lo, hi, nil
}

// Options tune the evaluation and search.
type Options struct {
	// Performability configures the per-candidate evaluation. The
	// Strict saturation policy is usually unsatisfiable (every finite
	// configuration has reachable all-down states), so the tool
	// defaults to ExcludeDown together with the availability goal,
	// which is the decomposition Section 7.1 describes.
	Performability performability.Options
	// MaxIterations bounds the greedy loop; zero means 1000.
	MaxIterations int
	// Workers sizes the planners' worker pools: 0 means
	// runtime.NumCPU(), 1 forces the fully sequential path, larger
	// values cap the pool explicitly. Exhaustive spreads candidate
	// configurations over the pool; the other planners spread the
	// per-system-state evaluations inside each candidate. Results are
	// bit-identical across worker counts (the reductions run in a
	// deterministic order), so this only trades wall-clock for cores.
	Workers int
	// Evaluator optionally supplies a pre-warmed shared performability
	// evaluator (performability.NewEvaluator) so several searches over
	// one analysis share one degraded-state cache. It must have been
	// built against the same analysis with the same Performability
	// options; the planners reject mismatches. nil builds a fresh
	// evaluator per search.
	Evaluator *performability.Evaluator
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	return o
}

// workerCount resolves Workers to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers == 0 {
		return runtime.NumCPU()
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// DefaultOptions returns the recommended evaluation options.
func DefaultOptions() Options {
	return Options{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	}
}

// Assessment records how one candidate fares against the goals.
type Assessment struct {
	Config         perf.Config
	Perf           *performability.Result
	Unavailability float64
	// WorkflowDelays[i] is the expected per-instance queueing delay of
	// workflow i under the candidate (populated when the goals carry
	// per-workflow limits).
	WorkflowDelays []float64
	PerfOK         bool
	AvailOK        bool
}

// Feasible reports whether both goals hold.
func (a *Assessment) Feasible() bool { return a.PerfOK && a.AvailOK }

// Step records one greedy iteration for the recommendation trace.
type Step struct {
	// Config is the candidate evaluated this iteration.
	Config perf.Config
	// MaxWaiting and Unavailability are the candidate's metrics.
	MaxWaiting     float64
	Unavailability float64
	// AddedType is the server type that received a replica after this
	// evaluation, or -1 when the candidate was accepted or a replica was
	// removed instead.
	AddedType int
	// RemovedType is the server type that lost a replica after this
	// evaluation (warm-started searches trim once feasible), or -1.
	RemovedType int
	// Reason explains the choice ("waiting goal", "availability goal",
	// or "cost reduction").
	Reason string
}

// PartialTrace carries the accumulated greedy trace on a typed
// budget_exceeded error (Detail["partial_trace"]), so callers can resume
// from where the search stopped or report the progress made. Its String
// keeps rendered error messages bounded — the full steps are reached by
// type-asserting the detail value.
type PartialTrace []Step

func (p PartialTrace) String() string {
	if len(p) == 0 {
		return "0 steps"
	}
	return fmt.Sprintf("%d steps, last at %v", len(p), p[len(p)-1].Config)
}

// Recommendation is the tool's output.
type Recommendation struct {
	// Config is the selected configuration.
	Config perf.Config
	// Cost is the total number of servers.
	Cost int
	// Assessment is the final candidate's evaluation.
	Assessment *Assessment
	// Trace records the greedy iterations (nil for Exhaustive).
	Trace []Step
	// Evaluations counts how many candidates were assessed.
	Evaluations int
	// Cache reports the shared degraded-state cache's effectiveness
	// over this search: Misses is the number of performance-model
	// solves actually performed, Hits the number served from cache. The
	// sequential pre-cache planner performed Hits+Misses solves.
	Cache performability.CacheStats
	// Solvers reports, per linear-system solver, how many steady-state
	// and first-passage solves ran during this search, their iteration
	// totals, and how many were fallbacks after a preferred solver
	// failed. The counters are process-global underneath, so on a
	// server handling concurrent searches the delta may attribute an
	// overlapping request's solves here too; it is a diagnostic trace,
	// not an exact accounting.
	Solvers map[string]linalg.SolverCounter
}

// Assess evaluates one candidate configuration against the goals — the
// building block the searches below share, exported for callers (like
// the advisor) that track a running system's compliance without
// searching.
func Assess(a *perf.Analysis, cfg perf.Config, goals Goals, opts Options) (*Assessment, error) {
	return AssessContext(context.Background(), a, cfg, goals, opts)
}

// AssessContext is Assess with cancellation: a done context aborts the
// per-state solves and returns ctx.Err().
func AssessContext(ctx context.Context, a *perf.Analysis, cfg perf.Config, goals Goals, opts Options) (*Assessment, error) {
	if err := goals.validate(a.Env().K()); err != nil {
		return nil, err
	}
	eng, err := newEngine(a, goals, opts.withDefaults(), opts.workerCount())
	if err != nil {
		return nil, err
	}
	return eng.assessConfig(ctx, cfg)
}

// Greedy runs the paper's heuristic (Section 7.2): starting from the
// minimal configuration, it repeatedly evaluates the candidate and adds
// one replica to the most critical server type — the type with the worst
// waiting-time violation when the performability goal is unmet, otherwise
// the type contributing most to unavailability — re-evaluating between
// additions so the configuration is never oversized for one criterion
// while the other already holds.
func Greedy(a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	return GreedyContext(context.Background(), a, goals, cons, opts)
}

// GreedyContext is Greedy with cancellation: a done context makes the
// search return ctx.Err() promptly, discarding any partial trace. The
// shared evaluator (Options.Evaluator) keeps every per-state vector that
// completed before the cancellation and stays reusable.
//
// With Constraints.StartFrom set the search warm-starts at that
// configuration (clamped into the bounds) and, once the candidate is
// feasible, trims replicas the goals no longer need — see
// Constraints.StartFrom. An exhausted iteration budget returns a typed
// budget_exceeded error carrying the partial trace (Detail
// "partial_trace", a PartialTrace) and the best configuration reached
// (Detail "best_config"), so callers can resume via StartFrom — unless
// the incumbent is already feasible (a warm start caught mid-trim), in
// which case the feasible incumbent is returned instead of the error.
func GreedyContext(ctx context.Context, a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	k := a.Env().K()
	if err := goals.validate(k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	lo, hi, err := cons.bounds(k)
	if err != nil {
		return nil, err
	}

	eng, err := newEngine(a, goals, opts, opts.workerCount())
	if err != nil {
		return nil, err
	}
	cfg := perf.Config{Replicas: append([]int(nil), lo...)}
	warmStart := cons.StartFrom != nil
	if warmStart {
		if len(cons.StartFrom) != k {
			return nil, fmt.Errorf("config: %d start-from replicas for %d server types", len(cons.StartFrom), k)
		}
		for x, v := range cons.StartFrom {
			if v > lo[x] {
				cfg.Replicas[x] = v
			}
			if cfg.Replicas[x] > hi[x] {
				cfg.Replicas[x] = hi[x]
			}
		}
	}
	rec := &Recommendation{}
	accept := func(as *Assessment, step Step) *Recommendation {
		rec.Trace = append(rec.Trace, step)
		rec.Config = cfg.Clone()
		rec.Cost = cfg.TotalServers()
		rec.Assessment = as
		eng.stamp(rec)
		return rec
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		as, err := eng.assess(ctx, cfg.Replicas)
		if err != nil {
			return nil, err
		}
		rec.Evaluations++
		step := Step{
			Config:         cfg.Clone(),
			MaxWaiting:     as.Perf.MaxWaiting(),
			Unavailability: as.Unavailability,
			AddedType:      -1,
			RemovedType:    -1,
		}
		if as.Feasible() {
			if !warmStart {
				return accept(as, step), nil
			}
			// Warm start: the candidate meets the goals, but the drift
			// that triggered the re-plan may have left it oversized. Trim
			// the replica whose removal keeps every goal met with the
			// most headroom; accept once no removal stays feasible.
			target, err := bestRemoval(ctx, eng, rec, goals, cfg.Replicas, lo)
			if err != nil {
				return nil, err
			}
			if target < 0 {
				return accept(as, step), nil
			}
			step.RemovedType = target
			step.Reason = "cost reduction"
			rec.Trace = append(rec.Trace, step)
			cfg.Replicas[target]--
			continue
		}

		var target int
		var reason string
		if !as.PerfOK {
			target = mostCriticalForWaiting(a, as, goals, cfg.Replicas, hi)
			reason = "waiting goal"
		} else {
			target = mostCriticalForAvailability(a, cfg.Replicas, hi, opts)
			reason = "availability goal"
		}
		if target < 0 {
			return nil, wfmserr.New(wfmserr.CodeInfeasible, "config",
				"goals unreachable within constraints at %v (max waiting %.4g, unavailability %.4g)",
				cfg, as.Perf.MaxWaiting(), as.Unavailability)
		}
		step.AddedType = target
		step.Reason = reason
		rec.Trace = append(rec.Trace, step)
		cfg.Replicas[target]++
	}
	if warmStart {
		// The budget ran out mid-trim: if the incumbent is feasible (every
		// removal step preserved feasibility), it is a valid — merely
		// possibly untrimmed — recommendation, strictly more useful than a
		// budget error. The assessment is memoized, so this costs nothing.
		if as, err := eng.assess(ctx, cfg.Replicas); err == nil && as.Feasible() {
			return accept(as, Step{
				Config:         cfg.Clone(),
				MaxWaiting:     as.Perf.MaxWaiting(),
				Unavailability: as.Unavailability,
				AddedType:      -1,
				RemovedType:    -1,
			}), nil
		}
	}
	budgetErr := wfmserr.New(wfmserr.CodeBudgetExceeded, "config",
		"greedy search exceeded its iteration budget").
		With("iterations", opts.MaxIterations).
		With("evaluations", rec.Evaluations).
		With("best_config", append([]int(nil), cfg.Replicas...))
	if len(rec.Trace) > 0 {
		budgetErr = budgetErr.With("partial_trace", PartialTrace(rec.Trace))
	}
	return nil, budgetErr
}

// bestRemoval picks the server type whose single-replica removal keeps
// the candidate feasible while leaving the most goal headroom — the
// largest remaining slack across the active goals — tie-broken by the
// lowest type index. It returns -1 when no removal stays feasible (or
// none is allowed by the lower bounds). Candidate assessments count
// toward rec.Evaluations like every other greedy evaluation.
func bestRemoval(ctx context.Context, eng *engine, rec *Recommendation, goals Goals, replicas, lo []int) (int, error) {
	best := -1
	bestSlack := 0.0
	y := append([]int(nil), replicas...)
	for x := range y {
		if y[x]-1 < lo[x] {
			continue
		}
		y[x]--
		as, err := eng.assess(ctx, y)
		y[x]++
		if err != nil {
			return -1, err
		}
		rec.Evaluations++
		if !as.Feasible() {
			continue
		}
		if slack := goalSlack(eng.a, as, goals); slack > bestSlack || best < 0 {
			bestSlack, best = slack, x
		}
	}
	return best, nil
}

// goalSlack is the minimum remaining headroom of an assessment across
// the active goals, as a fraction of each goal's limit: 0 means some
// goal is exactly at its limit, 1 means untouched. Only finite, set
// goals contribute.
func goalSlack(a *perf.Analysis, as *Assessment, goals Goals) float64 {
	slack := 1.0
	note := func(value, limit float64) {
		if limit <= 0 || math.IsInf(limit, 1) {
			return
		}
		s := 1 - value/limit
		if s < slack {
			slack = s
		}
	}
	for x, w := range as.Perf.Waiting {
		note(w, goals.waitingLimit(x))
	}
	note(as.Unavailability, goals.MaxUnavailability)
	if goals.PerWorkflowMaxDelay != nil && as.WorkflowDelays != nil {
		for i, d := range as.WorkflowDelays {
			if i < len(goals.PerWorkflowMaxDelay) {
				note(d, goals.PerWorkflowMaxDelay[i])
			}
		}
	}
	return slack
}

// mostCriticalForWaiting picks the server type with the largest relative
// waiting-time violation that can still grow. Saturated (+Inf) types rank
// first, tie-broken by utilization. Per-workflow delay violations add
// their per-type contributions r_{x,i}·W_x to the scores, so the type
// carrying most of a violating workflow's delay grows first.
func mostCriticalForWaiting(a *perf.Analysis, as *Assessment, goals Goals, replicas, hi []int) int {
	k := len(as.Perf.Waiting)
	wfScore := make([]float64, k)
	if goals.PerWorkflowMaxDelay != nil && as.WorkflowDelays != nil {
		for i := range a.Models() {
			limit := goals.PerWorkflowMaxDelay[i]
			if limit <= 0 || as.WorkflowDelays[i] <= limit {
				continue
			}
			r := a.WorkflowRequests(i)
			for x := 0; x < k; x++ {
				contribution := r[x] * as.Perf.Waiting[x]
				if math.IsInf(contribution, 1) {
					contribution = 1e18
				}
				wfScore[x] += contribution / limit
			}
		}
	}
	best := -1
	bestScore := math.Inf(-1)
	for x, w := range as.Perf.Waiting {
		if replicas[x] >= hi[x] {
			continue
		}
		limit := goals.waitingLimit(x)
		var score float64
		switch {
		case math.IsInf(w, 1):
			// Rank saturated types by how overloaded they are.
			score = 1e18 + as.Perf.FullUpWaiting[x]
			if math.IsInf(as.Perf.FullUpWaiting[x], 1) {
				score = 2e18
			}
		case math.IsInf(limit, 1):
			score = math.Inf(-1) // no per-type goal
		default:
			score = w / limit
		}
		if wfScore[x] > 0 {
			if math.IsInf(score, -1) {
				score = 0
			}
			score += wfScore[x]
		}
		if score > bestScore {
			bestScore, best = score, x
		}
	}
	if best >= 0 && math.IsInf(bestScore, -1) {
		return -1
	}
	return best
}

// mostCriticalForAvailability picks the growable server type whose
// complete failure is most likely, i.e. the largest P(X_x = 0).
func mostCriticalForAvailability(a *perf.Analysis, replicas, hi []int, opts Options) int {
	env := a.Env()
	best := -1
	bestDown := -1.0
	for x := 0; x < env.K(); x++ {
		if replicas[x] >= hi[x] {
			continue
		}
		st := env.Type(x)
		marginal, err := avail.TypeMarginal(avail.TypeParams{
			Replicas:    replicas[x],
			FailureRate: st.FailureRate,
			RepairRate:  st.RepairRate,
		}, opts.Performability.Discipline)
		if err != nil {
			continue
		}
		if down := marginal[0]; down > bestDown {
			bestDown, best = down, x
		}
	}
	if bestDown <= 0 {
		// No growable type improves availability.
		return -1
	}
	return best
}

// Exhaustive finds the true minimum-cost feasible configuration by
// enumerating replication vectors in order of increasing total server
// count. It is exponential in the number of server types and exists as
// the optimality baseline for the greedy heuristic.
//
// With Options.Workers ≠ 1 the candidates of each total are assessed in
// chunks over a worker pool; the winner is still the first feasible
// candidate in enumeration order, so the recommendation — including the
// Evaluations counter, which counts candidates in enumeration order up
// to and including the winner — is identical to the sequential search.
// (The final chunk's trailing members are assessed speculatively; that
// extra work shows up only in the Cache counters.)
func Exhaustive(a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	return ExhaustiveContext(context.Background(), a, goals, cons, opts)
}

// ExhaustiveContext is Exhaustive with cancellation: a done context
// aborts the enumeration and returns ctx.Err().
func ExhaustiveContext(ctx context.Context, a *perf.Analysis, goals Goals, cons Constraints, opts Options) (*Recommendation, error) {
	k := a.Env().K()
	if err := goals.validate(k); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	lo, hi, err := cons.bounds(k)
	if err != nil {
		return nil, err
	}
	minTotal, maxTotal := 0, 0
	for x := 0; x < k; x++ {
		minTotal += lo[x]
		maxTotal += hi[x]
	}
	workers := opts.workerCount()
	// Candidate-level parallelism: per-state pools inside each
	// assessment stay sequential to avoid oversubscription.
	eng, err := newEngine(a, goals, opts, 1)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{}
	for total := minTotal; total <= maxTotal; total++ {
		var found *Assessment
		var ferr error
		if workers <= 1 {
			enumerate(lo, hi, total, func(y []int) bool {
				as, err := eng.assess(ctx, y)
				if err != nil {
					ferr = err
					return false
				}
				rec.Evaluations++
				if as.Feasible() {
					found = as
					return false
				}
				return true
			})
		} else {
			found, ferr = exhaustiveParallel(ctx, eng, lo, hi, total, workers, rec)
		}
		if ferr != nil {
			return nil, ferr
		}
		if found != nil {
			rec.Config = found.Config.Clone()
			rec.Cost = found.Config.TotalServers()
			rec.Assessment = found
			eng.stamp(rec)
			return rec, nil
		}
	}
	return nil, wfmserr.New(wfmserr.CodeInfeasible, "config",
		"no feasible configuration within constraints (searched totals %d..%d)", minTotal, maxTotal)
}

// exhaustiveParallel sweeps one total's candidates in enumeration-order
// chunks, assessing each chunk over the worker pool and scanning it in
// order, so the returned assessment is exactly the one the sequential
// sweep would have accepted first.
func exhaustiveParallel(ctx context.Context, eng *engine, lo, hi []int, total, workers int, rec *Recommendation) (*Assessment, error) {
	chunkSize := 4 * workers
	chunk := make([][]int, 0, chunkSize)
	var found *Assessment
	var ferr error
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		out, err := eng.assessChunk(ctx, chunk, workers)
		n := len(chunk)
		chunk = chunk[:0]
		if err != nil {
			ferr = err
			return false
		}
		for i, as := range out {
			if as.Feasible() {
				// Count candidates in enumeration order up to the winner,
				// exactly as the sequential sweep would; the chunk's
				// speculatively assessed tail is visible only in the
				// cache counters.
				rec.Evaluations += i + 1
				found = as
				return false
			}
		}
		rec.Evaluations += n
		return true
	}
	enumerate(lo, hi, total, func(y []int) bool {
		chunk = append(chunk, append([]int(nil), y...))
		if len(chunk) >= chunkSize {
			return flush()
		}
		return true
	})
	if found == nil && ferr == nil {
		flush()
	}
	return found, ferr
}

// enumerate calls fn for every vector y with lo ≤ y ≤ hi and Σy = total,
// stopping early when fn returns false.
func enumerate(lo, hi []int, total int, fn func([]int) bool) {
	y := make([]int, len(lo))
	var rec func(x, remaining int) bool
	rec = func(x, remaining int) bool {
		if x == len(lo)-1 {
			if remaining < lo[x] || remaining > hi[x] {
				return true
			}
			y[x] = remaining
			return fn(y)
		}
		// Bound the component so the rest stays feasible.
		restLo, restHi := 0, 0
		for j := x + 1; j < len(lo); j++ {
			restLo += lo[j]
			restHi += hi[j]
		}
		from := lo[x]
		if remaining-restHi > from {
			from = remaining - restHi
		}
		to := hi[x]
		if remaining-restLo < to {
			to = remaining - restLo
		}
		for v := from; v <= to; v++ {
			y[x] = v
			if !rec(x+1, remaining-v) {
				return false
			}
		}
		return true
	}
	if len(lo) > 0 {
		rec(0, total)
	}
}
