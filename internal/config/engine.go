package config

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"performa/internal/linalg"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/wfmserr"
)

// engine is the shared assessment engine behind all four planners and
// the exported Assess: one performability evaluator (whose degraded-state
// cache is keyed by the system state X and therefore shared across every
// candidate Y the search visits) plus a memo of whole-candidate
// assessments keyed by the same compact encoding. It is safe for
// concurrent use, so Exhaustive can fan candidates out over a worker
// pool while Greedy and BranchAndBound walk sequentially.
type engine struct {
	a     *perf.Analysis
	goals Goals
	opts  Options
	ev    *performability.Evaluator
	// stateWorkers is the worker-pool width for the per-state
	// evaluations inside one candidate; planners that parallelize across
	// candidates set it to 1 to avoid oversubscription.
	stateWorkers int
	// start snapshots the evaluator's cache counters at engine creation
	// so stamp reports per-search deltas even on a shared evaluator.
	start performability.CacheStats
	// solverStart snapshots the process-wide solver counters so stamp
	// can report which linear solvers this search exercised.
	solverStart map[string]linalg.SolverCounter

	mu   sync.Mutex
	memo map[string]*Assessment
	// computed counts memo misses: candidates actually evaluated.
	computed atomic.Int64
}

// newEngine builds the engine, creating a fresh evaluator or validating
// the caller-supplied shared one.
func newEngine(a *perf.Analysis, goals Goals, opts Options, stateWorkers int) (*engine, error) {
	ev := opts.Evaluator
	if ev == nil {
		var err error
		ev, err = performability.NewEvaluator(a, opts.Performability)
		if err != nil {
			return nil, err
		}
	} else {
		if ev.Analysis() != a {
			return nil, fmt.Errorf("config: shared evaluator was built against a different analysis")
		}
		if ev.Options() != opts.Performability {
			return nil, fmt.Errorf("config: shared evaluator options %+v differ from planner options %+v", ev.Options(), opts.Performability)
		}
	}
	return &engine{
		a: a, goals: goals, opts: opts,
		ev:           ev,
		stateWorkers: stateWorkers,
		start:        ev.Stats(),
		solverStart:  linalg.SolverCounters(),
		memo:         make(map[string]*Assessment),
	}, nil
}

// assess evaluates the candidate replication vector y against the goals,
// memoized. Returned assessments are shared — treat them as read-only.
// A done context makes it return ctx.Err() promptly; the memo only ever
// stores completed assessments, so a canceled search leaves the engine
// (and the shared evaluator behind it) consistent and reusable.
func (e *engine) assess(ctx context.Context, y []int) (*Assessment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := performability.StateKey(y)
	e.mu.Lock()
	as, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return as, nil
	}
	as, err := e.compute(ctx, perf.Config{Replicas: append([]int(nil), y...)})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.memo[key] = as
	e.mu.Unlock()
	return as, nil
}

// assessConfig evaluates a full configuration. Configurations with
// co-location or per-replica speeds bypass the memo (its key covers only
// the replication vector); the evaluator rejects them with the same
// error the sequential path produced.
func (e *engine) assessConfig(ctx context.Context, cfg perf.Config) (*Assessment, error) {
	if len(cfg.Colocated) > 0 || cfg.Speeds != nil {
		return e.compute(ctx, cfg)
	}
	return e.assess(ctx, cfg.Replicas)
}

// compute runs the performability model and checks the goals — the body
// of the former sequential assess().
func (e *engine) compute(ctx context.Context, cfg perf.Config) (*Assessment, error) {
	res, err := e.ev.EvaluateContext(ctx, cfg, e.stateWorkers)
	if err != nil {
		return nil, err
	}
	e.computed.Add(1)
	out := &Assessment{
		Config:         res.Config,
		Perf:           res,
		Unavailability: 1 - res.Availability,
	}
	out.PerfOK = true
	for x, w := range res.Waiting {
		if w > e.goals.waitingLimit(x) {
			out.PerfOK = false
			break
		}
	}
	if e.goals.PerWorkflowMaxDelay != nil {
		models := e.a.Models()
		if len(e.goals.PerWorkflowMaxDelay) != len(models) {
			return nil, fmt.Errorf("config: %d per-workflow delay goals for %d workflows", len(e.goals.PerWorkflowMaxDelay), len(models))
		}
		out.WorkflowDelays = make([]float64, len(models))
		for i := range models {
			r := e.a.WorkflowRequests(i)
			var d float64
			for x := range r {
				d += r[x] * res.Waiting[x]
			}
			out.WorkflowDelays[i] = d
			if limit := e.goals.PerWorkflowMaxDelay[i]; limit > 0 && d > limit {
				out.PerfOK = false
			}
		}
	}
	if e.goals.MaxUnavailability > 0 {
		out.AvailOK = out.Unavailability <= e.goals.MaxUnavailability
	} else {
		out.AvailOK = true
	}
	return out, nil
}

// stamp writes the engine's cache counters onto a finished
// recommendation.
func (e *engine) stamp(rec *Recommendation) {
	rec.Cache = e.ev.Stats().Sub(e.start)
	rec.Solvers = linalg.SolverCountersDelta(e.solverStart)
}

// assessContained is assess with panic containment for worker
// goroutines: a panic escaping the analytic stack inside a pool worker
// would kill the whole process (nothing above the goroutine can recover
// it), so it is converted into a typed internal error here and flows
// through the normal per-candidate error reporting.
func (e *engine) assessContained(ctx context.Context, y []int) (as *Assessment, err error) {
	defer func() {
		if p := recover(); p != nil {
			as, err = nil, wfmserr.New(wfmserr.CodeInternal, "config",
				"panic while assessing candidate %v: %v", y, p)
		}
	}()
	return e.assess(ctx, y)
}

// assessChunk evaluates a batch of candidates over a pool of workers and
// returns the per-candidate assessments in input order, plus the first
// error in input order (later candidates' errors are suppressed, as the
// sequential scan would never have reached them).
func (e *engine) assessChunk(ctx context.Context, ys [][]int, workers int) ([]*Assessment, error) {
	out := make([]*Assessment, len(ys))
	errs := make([]error, len(ys))
	if workers > len(ys) {
		workers = len(ys)
	}
	if workers <= 1 {
		for i, y := range ys {
			as, err := e.assess(ctx, y)
			if err != nil {
				return nil, err
			}
			out[i] = as
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ys) {
					return
				}
				out[i], errs[i] = e.assessContained(ctx, ys[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
