package config

import (
	"testing"

	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/workload"
)

// workloadAnalysis builds an analysis of the paper environment under the
// given built-in workflows — the real workloads the equivalence tests
// exercise, as opposed to the synthetic single-activity charts above.
func workloadAnalysis(t *testing.T, flows ...*spec.Workflow) *perf.Analysis {
	t.Helper()
	env := workload.PaperEnvironment()
	var models []*spec.Model
	for _, w := range flows {
		m, err := spec.Build(w, env)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	a, err := perf.NewAnalysis(env, models)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// plannerRuns enumerates the four planners as closures over shared
// goals/constraints so the equivalence tests can sweep them uniformly.
func plannerRuns(a *perf.Analysis, goals Goals, cons Constraints) []struct {
	name string
	run  func(Options) (*Recommendation, error)
} {
	return []struct {
		name string
		run  func(Options) (*Recommendation, error)
	}{
		{"greedy", func(o Options) (*Recommendation, error) {
			return Greedy(a, goals, cons, o)
		}},
		{"exhaustive", func(o Options) (*Recommendation, error) {
			return Exhaustive(a, goals, cons, o)
		}},
		{"branch&bound", func(o Options) (*Recommendation, error) {
			return BranchAndBound(a, goals, cons, o)
		}},
		{"annealing", func(o Options) (*Recommendation, error) {
			return SimulatedAnnealing(a, goals, cons, o, AnnealingOptions{Seed: 7, Iterations: 500})
		}},
	}
}

func assertRecommendationsIdentical(t *testing.T, label string, want, got *Recommendation) {
	t.Helper()
	if got.Config.String() != want.Config.String() {
		t.Errorf("%s: config %s != %s", label, got.Config, want.Config)
	}
	if got.Cost != want.Cost {
		t.Errorf("%s: cost %d != %d", label, got.Cost, want.Cost)
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("%s: evaluations %d != %d", label, got.Evaluations, want.Evaluations)
	}
	if got.Assessment.Unavailability != want.Assessment.Unavailability {
		t.Errorf("%s: unavailability %v != %v", label, got.Assessment.Unavailability, want.Assessment.Unavailability)
	}
	for x := range want.Assessment.Perf.Waiting {
		if got.Assessment.Perf.Waiting[x] != want.Assessment.Perf.Waiting[x] {
			t.Errorf("%s: W[%d] = %v, want %v (bit-identical)",
				label, x, got.Assessment.Perf.Waiting[x], want.Assessment.Perf.Waiting[x])
		}
	}
}

// TestPlannersParallelEquivalence is the headline determinism guarantee:
// every planner returns a bit-identical recommendation whether its
// worker pools run sequentially or wide, on both the EP and the order
// workload.
func TestPlannersParallelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a    *perf.Analysis
	}{
		{"ep", workloadAnalysis(t, workload.EPWorkflow(5))},
		{"order", workloadAnalysis(t, workload.OrderWorkflow(4))},
	}
	goals := Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	cons := Constraints{MaxReplicas: []int{6, 6, 6}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range plannerRuns(tc.a, goals, cons) {
				seq := DefaultOptions()
				seq.Workers = 1
				want, err := p.run(seq)
				if err != nil {
					t.Fatalf("%s sequential: %v", p.name, err)
				}
				for _, workers := range []int{2, 4} {
					par := DefaultOptions()
					par.Workers = workers
					got, err := p.run(par)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", p.name, workers, err)
					}
					assertRecommendationsIdentical(t, p.name, want, got)
				}
			}
		})
	}
}

// TestSharedEvaluatorWarmCache verifies the cache-correctness contract
// at the planner level: re-running a search against a fully warmed
// shared evaluator performs zero new model solves and returns the exact
// cold-run recommendation.
func TestSharedEvaluatorWarmCache(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5))
	goals := Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	cons := Constraints{MaxReplicas: []int{6, 6, 6}}

	fresh, err := Exhaustive(a, goals, cons, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	shared := DefaultOptions()
	ev, err := performability.NewEvaluator(a, shared.Performability)
	if err != nil {
		t.Fatal(err)
	}
	shared.Evaluator = ev
	cold, err := Exhaustive(a, goals, cons, shared)
	if err != nil {
		t.Fatal(err)
	}
	assertRecommendationsIdentical(t, "shared-vs-fresh", fresh, cold)
	if cold.Cache.Misses == 0 {
		t.Fatal("cold run reported zero model solves")
	}

	warm, err := Exhaustive(a, goals, cons, shared)
	if err != nil {
		t.Fatal(err)
	}
	assertRecommendationsIdentical(t, "warm-vs-cold", cold, warm)
	if warm.Cache.Misses != 0 {
		t.Errorf("warmed search performed %d model solves, want 0", warm.Cache.Misses)
	}
	if warm.Cache.Hits == 0 {
		t.Error("warmed search reported no cache hits")
	}

	// A warmed cache also serves a different planner over the same space.
	greedy, err := Greedy(a, goals, Constraints{}, shared)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Greedy(a, goals, Constraints{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertRecommendationsIdentical(t, "greedy-warm-vs-fresh", ref, greedy)
}

// TestSharedEvaluatorMismatchRejected pins the validation of
// Options.Evaluator: a foreign analysis or differing performability
// options must be refused, not silently produce wrong numbers.
func TestSharedEvaluatorMismatchRejected(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5))
	other := workloadAnalysis(t, workload.OrderWorkflow(4))
	goals := Goals{MaxUnavailability: 1e-4}

	opts := DefaultOptions()
	ev, err := performability.NewEvaluator(other, opts.Performability)
	if err != nil {
		t.Fatal(err)
	}
	opts.Evaluator = ev
	if _, err := Greedy(a, goals, Constraints{}, opts); err == nil {
		t.Error("evaluator over a different analysis accepted")
	}

	opts = DefaultOptions()
	ev, err = performability.NewEvaluator(a, performability.Options{Policy: performability.Strict})
	if err != nil {
		t.Fatal(err)
	}
	opts.Evaluator = ev
	if _, err := Greedy(a, goals, Constraints{}, opts); err == nil {
		t.Error("evaluator with differing performability options accepted")
	}
}

// TestExhaustiveCacheReduction asserts the headline work-avoidance
// claim: across an exhaustive search the shared degraded-state cache
// serves at least 4 of every 5 state evaluations, i.e. the number of
// actual model solves drops by ≥ 5×.
func TestExhaustiveCacheReduction(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5))
	goals := Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	rec, err := Exhaustive(a, goals, Constraints{MaxReplicas: []int{6, 6, 6}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := rec.Cache.Hits + rec.Cache.Misses
	if total == 0 {
		t.Fatal("no cache traffic recorded")
	}
	if rec.Cache.Misses == 0 {
		t.Fatal("zero model solves on a fresh cache")
	}
	if ratio := float64(total) / float64(rec.Cache.Misses); ratio < 5 {
		t.Errorf("cache reduced model solves only %.1f× (%d of %d served from cache), want ≥ 5×",
			ratio, rec.Cache.Hits, total)
	}
}

// TestAssessWorkerEquivalence covers the exported single-candidate
// entry point: Assess must be worker-count-invariant too.
func TestAssessWorkerEquivalence(t *testing.T) {
	a := workloadAnalysis(t, workload.EPWorkflow(5), workload.OrderWorkflow(3))
	goals := Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	cfg := perf.Config{Replicas: []int{3, 3, 4}}

	seq := DefaultOptions()
	seq.Workers = 1
	want, err := Assess(a, cfg, goals, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultOptions()
	par.Workers = 4
	got, err := Assess(a, cfg, goals, par)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unavailability != want.Unavailability {
		t.Errorf("unavailability %v != %v", got.Unavailability, want.Unavailability)
	}
	if got.PerfOK != want.PerfOK || got.AvailOK != want.AvailOK {
		t.Errorf("feasibility (%v,%v) != (%v,%v)", got.PerfOK, got.AvailOK, want.PerfOK, want.AvailOK)
	}
	for x := range want.Perf.Waiting {
		if got.Perf.Waiting[x] != want.Perf.Waiting[x] {
			t.Errorf("W[%d] = %v, want %v (bit-identical)", x, got.Perf.Waiting[x], want.Perf.Waiting[x])
		}
	}
}
