package wfjson

import (
	"errors"
	"strings"
	"testing"

	"performa/internal/wfmserr"
)

// TestDecodeRejectsNonFiniteParameters pins the validation that keeps
// non-finite numbers out of the model stack: values that are finite on
// the wire but derive to Inf (a subnormal mttf whose 1/mttf overflows,
// a mean service whose second moment overflows) must be refused at the
// door with a typed invalid-model error — they used to sail through and
// blow up deep inside the availability solver.
func TestDecodeRejectsNonFiniteParameters(t *testing.T) {
	cases := map[string]string{
		"overflowing 1/mttf": strings.Replace(sampleDoc,
			`"mttf": 43200`, `"mttf": 1e-320`, 1),
		"overflowing 1/mttr": strings.Replace(sampleDoc,
			`"mttf": 10080, "mttr": 10`, `"mttf": 10080, "mttr": 1e-320`, 1),
		"overflowing second moment": strings.Replace(sampleDoc,
			`"mean_service": 0.0015`, `"mean_service": 1e200`, 1),
	}
	// The mttr replacement needs the field order as written; skip cases
	// whose needle did not match so the test fails loudly instead of
	// silently passing the unmodified document.
	for name, doc := range cases {
		if doc == sampleDoc {
			t.Fatalf("%s: mutation did not apply", name)
		}
		_, _, err := Decode(strings.NewReader(doc))
		if !errors.Is(err, wfmserr.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
}
