// Package wfjson de/serializes server environments and workflow
// specifications as JSON documents, so the command-line tools can assess
// and plan systems that are not compiled in. The format mirrors the spec
// and statechart types one-to-one:
//
//	{
//	  "environment": {
//	    "types": [
//	      {"name": "orb", "kind": "communication",
//	       "mean_service": 0.0005, "service_scv": 1,
//	       "mttf": 43200, "mttr": 10}
//	    ]
//	  },
//	  "workflows": [
//	    {"name": "EP", "arrival_rate": 1,
//	     "chart": {
//	       "name": "EP", "initial": "init", "final": "done",
//	       "states": [
//	         {"name": "init"},
//	         {"name": "order", "activity": "NewOrder", "interactive": true},
//	         {"name": "ship", "subcharts": [ ...nested charts... ]},
//	         {"name": "done"}
//	       ],
//	       "transitions": [
//	         {"from": "init", "to": "order", "prob": 1},
//	         {"from": "order", "to": "ship", "prob": 1,
//	          "event": "NewOrder_DONE", "cond": "!CardProblem",
//	          "actions": [{"kind": "set-true", "target": "Paid"}]}
//	       ]
//	     },
//	     "activities": [
//	       {"name": "NewOrder", "mean_duration": 5, "stages": 1,
//	        "load": {"orb": 2, "engine": 3}}
//	     ]}
//	  ]
//	}
//
// Times share one unit across the document (the examples use minutes);
// service times are given as mean plus squared coefficient of variation
// (scv; 1 = exponential), failures as mean time to failure and repair.
package wfjson

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"performa/internal/spec"
	"performa/internal/statechart"
	"performa/internal/wfmserr"
)

// Document is the top-level JSON structure.
type Document struct {
	Environment Environment `json:"environment"`
	Workflows   []Workflow  `json:"workflows"`
}

// Environment lists the server types.
type Environment struct {
	Types []ServerType `json:"types"`
}

// ServerType mirrors spec.ServerType in deployment-friendly units.
type ServerType struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // communication | engine | application
	MeanService float64 `json:"mean_service"`
	ServiceSCV  float64 `json:"service_scv,omitempty"` // default 1 (exponential)
	MTTF        float64 `json:"mttf,omitempty"`        // 0 = never fails
	MTTR        float64 `json:"mttr,omitempty"`
}

// Workflow mirrors spec.Workflow.
type Workflow struct {
	Name        string     `json:"name"`
	ArrivalRate float64    `json:"arrival_rate"`
	Chart       Chart      `json:"chart"`
	Activities  []Activity `json:"activities"`
}

// Chart mirrors statechart.Chart.
type Chart struct {
	Name        string       `json:"name"`
	Initial     string       `json:"initial"`
	Final       string       `json:"final"`
	States      []State      `json:"states"`
	Transitions []Transition `json:"transitions"`
}

// State mirrors statechart.State.
type State struct {
	Name        string  `json:"name"`
	Activity    string  `json:"activity,omitempty"`
	Interactive bool    `json:"interactive,omitempty"`
	Subcharts   []Chart `json:"subcharts,omitempty"`
}

// Transition mirrors statechart.Transition.
type Transition struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	Prob    float64  `json:"prob"`
	Event   string   `json:"event,omitempty"`
	Cond    string   `json:"cond,omitempty"`
	Actions []Action `json:"actions,omitempty"`
}

// Action mirrors statechart.Action with a string kind.
type Action struct {
	Kind   string `json:"kind"` // start | set-true | set-false | raise
	Target string `json:"target"`
}

// Activity mirrors spec.ActivityProfile.
type Activity struct {
	Name         string             `json:"name"`
	MeanDuration float64            `json:"mean_duration"`
	Stages       int                `json:"stages,omitempty"`
	Load         map[string]float64 `json:"load,omitempty"`
}

var kindNames = map[string]spec.ServerKind{
	"communication": spec.Communication,
	"engine":        spec.Engine,
	"application":   spec.Application,
	"directory":     spec.Directory,
	"worklist":      spec.Worklist,
}

var kindStrings = map[spec.ServerKind]string{
	spec.Communication: "communication",
	spec.Engine:        "engine",
	spec.Application:   "application",
	spec.Directory:     "directory",
	spec.Worklist:      "worklist",
}

var actionKinds = map[string]statechart.ActionKind{
	"start":     statechart.ActionStart,
	"set-true":  statechart.ActionSetTrue,
	"set-false": statechart.ActionSetFalse,
	"raise":     statechart.ActionRaise,
}

var actionStrings = map[statechart.ActionKind]string{
	statechart.ActionStart:    "start",
	statechart.ActionSetTrue:  "set-true",
	statechart.ActionSetFalse: "set-false",
	statechart.ActionRaise:    "raise",
}

// Decode parses a document and converts it into a validated environment
// and workflow list.
func Decode(r io.Reader) (*spec.Environment, []*spec.Workflow, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc Document
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("wfjson: parsing document: %w", err)
	}
	return FromDocument(&doc)
}

// finiteField rejects non-finite user-supplied (or derived) numeric
// fields with a typed error: downstream solvers assume finite inputs,
// and a derived Inf (e.g. an overflowed second moment or a 1/MTTF that
// rounds to +Inf) would otherwise slip past range checks like x > 0.
func finiteField(owner, field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return wfmserr.New(wfmserr.CodeInvalidModel, "wfjson", "%s: %s %v is not finite", owner, field, v)
	}
	return nil
}

// FromDocument converts a parsed document into model inputs.
func FromDocument(doc *Document) (*spec.Environment, []*spec.Workflow, error) {
	types := make([]spec.ServerType, 0, len(doc.Environment.Types))
	for _, st := range doc.Environment.Types {
		kind, ok := kindNames[st.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("wfjson: server type %q: unknown kind %q (want communication, engine, application, directory, or worklist)", st.Name, st.Kind)
		}
		scv := st.ServiceSCV
		if scv == 0 {
			scv = 1
		}
		if scv < 0 {
			return nil, nil, fmt.Errorf("wfjson: server type %q: negative service scv %v", st.Name, scv)
		}
		owner := fmt.Sprintf("server type %q", st.Name)
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"mean_service", st.MeanService},
			{"service_scv", scv},
			{"mttf", st.MTTF},
			{"mttr", st.MTTR},
		} {
			if err := finiteField(owner, f.name, f.v); err != nil {
				return nil, nil, err
			}
		}
		out := spec.ServerType{
			Name:                st.Name,
			Kind:                kind,
			MeanService:         st.MeanService,
			ServiceSecondMoment: (1 + scv) * st.MeanService * st.MeanService,
		}
		if err := finiteField(owner, "derived service second moment", out.ServiceSecondMoment); err != nil {
			return nil, nil, err
		}
		if st.MTTF > 0 {
			out.FailureRate = 1 / st.MTTF
		}
		if st.MTTR > 0 {
			out.RepairRate = 1 / st.MTTR
		}
		if err := finiteField(owner, "derived failure rate (1/mttf)", out.FailureRate); err != nil {
			return nil, nil, err
		}
		if err := finiteField(owner, "derived repair rate (1/mttr)", out.RepairRate); err != nil {
			return nil, nil, err
		}
		types = append(types, out)
	}
	env, err := spec.NewEnvironment(types...)
	if err != nil {
		return nil, nil, err
	}

	var flows []*spec.Workflow
	for _, w := range doc.Workflows {
		chart, err := chartFromJSON(&w.Chart)
		if err != nil {
			return nil, nil, fmt.Errorf("wfjson: workflow %q: %w", w.Name, err)
		}
		profiles := make(map[string]spec.ActivityProfile, len(w.Activities))
		for _, act := range w.Activities {
			owner := fmt.Sprintf("workflow %q: activity %q", w.Name, act.Name)
			if err := finiteField(owner, "mean_duration", act.MeanDuration); err != nil {
				return nil, nil, err
			}
			for serverType, l := range act.Load {
				if err := finiteField(owner, "load["+serverType+"]", l); err != nil {
					return nil, nil, err
				}
			}
			profiles[act.Name] = spec.ActivityProfile{
				Name:           act.Name,
				MeanDuration:   act.MeanDuration,
				DurationStages: act.Stages,
				Load:           act.Load,
			}
		}
		if err := finiteField(fmt.Sprintf("workflow %q", w.Name), "arrival_rate", w.ArrivalRate); err != nil {
			return nil, nil, err
		}
		flow := &spec.Workflow{
			Name:        w.Name,
			Chart:       chart,
			Profiles:    profiles,
			ArrivalRate: w.ArrivalRate,
		}
		if err := flow.Validate(env); err != nil {
			return nil, nil, err
		}
		flows = append(flows, flow)
	}
	if len(flows) == 0 {
		return nil, nil, fmt.Errorf("wfjson: document has no workflows")
	}
	return env, flows, nil
}

func chartFromJSON(c *Chart) (*statechart.Chart, error) {
	out := &statechart.Chart{
		Name:    c.Name,
		Initial: c.Initial,
		Final:   c.Final,
		States:  make(map[string]*statechart.State, len(c.States)),
	}
	for _, s := range c.States {
		if _, dup := out.States[s.Name]; dup {
			return nil, fmt.Errorf("chart %q: duplicate state %q", c.Name, s.Name)
		}
		st := &statechart.State{
			Name:        s.Name,
			Activity:    s.Activity,
			Interactive: s.Interactive,
		}
		for i := range s.Subcharts {
			sub, err := chartFromJSON(&s.Subcharts[i])
			if err != nil {
				return nil, err
			}
			st.Subcharts = append(st.Subcharts, sub)
		}
		out.States[s.Name] = st
	}
	for _, t := range c.Transitions {
		tr := &statechart.Transition{
			From:  t.From,
			To:    t.To,
			Prob:  t.Prob,
			Event: t.Event,
			Cond:  t.Cond,
		}
		for _, a := range t.Actions {
			kind, ok := actionKinds[a.Kind]
			if !ok {
				return nil, fmt.Errorf("chart %q: transition %s→%s: unknown action kind %q", c.Name, t.From, t.To, a.Kind)
			}
			tr.Actions = append(tr.Actions, statechart.Action{Kind: kind, Target: a.Target})
		}
		out.Transitions = append(out.Transitions, tr)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fingerprint returns a stable hex digest identifying the modeled system
// — the environment plus the workflow mix with its arrival rates. Two
// systems share a fingerprint exactly when their canonical documents
// (ToDocument output, which orders states, transitions, and activities
// deterministically) are byte-identical, so the digest is a safe cache
// key for model state derived purely from the system: analyses,
// degraded-state caches, availability marginals.
func Fingerprint(env *spec.Environment, flows []*spec.Workflow) (string, error) {
	doc, err := ToDocument(env, flows)
	if err != nil {
		return "", err
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("wfjson: fingerprinting document: %w", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the environment and workflows as an indented document.
func Encode(w io.Writer, env *spec.Environment, flows []*spec.Workflow) error {
	doc, err := ToDocument(env, flows)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// stableSCV recovers the service squared coefficient of variation from
// the stored second moment such that the emitted value survives the
// document round trip: FromDocument re-derives the second moment as
// (1+scv)·m², so the scv written here must map back to the same second
// moment bit for bit, or every encode/decode cycle would drift the
// value by an ulp and change the document's fingerprint. Many doubles
// share one derived second moment; canonSCV picks the cleanest
// representative of that preimage (0.5 rather than 0.5000000000000016),
// and the outer loop handles second moments no scv maps onto exactly by
// walking to a value that reproduces itself. Convergence is immediate
// in practice; the bound is a safety valve.
func stableSCV(secondMoment, mean float64) float64 {
	scv := canonSCV(secondMoment, mean)
	for i := 0; i < 8; i++ {
		next := canonSCV((1+scv)*mean*mean, mean)
		if next == scv {
			break
		}
		scv = next
	}
	return scv
}

// canonSCV returns the canonical scv for a stored second moment: the
// shortest-decimal positive double whose FromDocument image — the
// expression (1+scv)·m², replicated operation for operation — equals
// the second moment exactly. If no scv maps onto it (the multiply
// leaves gaps between representable products), the plain quotient is
// returned and stableSCV's iteration takes over. Zero is never emitted:
// the wire format reads an absent/zero scv as the exponential default 1.
func canonSCV(secondMoment, mean float64) float64 {
	raw := secondMoment/(mean*mean) - 1
	try := func(c float64) bool {
		return c > 0 && (1+c)*mean*mean == secondMoment
	}
	if half := math.Round(raw*2) / 2; try(half) {
		return half
	}
	for digits := 1; digits <= 17; digits++ {
		c, err := strconv.ParseFloat(strconv.FormatFloat(raw, 'g', digits, 64), 64)
		if err == nil && try(c) {
			return c
		}
	}
	return raw
}

// ToDocument converts model inputs into the JSON document form.
func ToDocument(env *spec.Environment, flows []*spec.Workflow) (*Document, error) {
	doc := &Document{}
	for _, st := range env.Types() {
		jt := ServerType{
			Name:        st.Name,
			Kind:        kindStrings[st.Kind],
			MeanService: st.MeanService,
		}
		if st.MeanService > 0 {
			jt.ServiceSCV = stableSCV(st.ServiceSecondMoment, st.MeanService)
		}
		if st.FailureRate > 0 {
			jt.MTTF = 1 / st.FailureRate
		}
		if st.RepairRate > 0 {
			jt.MTTR = 1 / st.RepairRate
		}
		doc.Environment.Types = append(doc.Environment.Types, jt)
	}
	for _, f := range flows {
		jw := Workflow{Name: f.Name, ArrivalRate: f.ArrivalRate}
		chart, err := chartToJSON(f.Chart)
		if err != nil {
			return nil, err
		}
		jw.Chart = *chart
		// Deterministic activity order for stable output.
		for _, act := range f.Chart.Activities() {
			p := f.Profiles[act]
			jw.Activities = append(jw.Activities, Activity{
				Name:         p.Name,
				MeanDuration: p.MeanDuration,
				Stages:       p.DurationStages,
				Load:         p.Load,
			})
		}
		doc.Workflows = append(doc.Workflows, jw)
	}
	return doc, nil
}

func chartToJSON(c *statechart.Chart) (*Chart, error) {
	out := &Chart{Name: c.Name, Initial: c.Initial, Final: c.Final}
	for _, name := range c.StateNames() {
		s := c.States[name]
		js := State{Name: s.Name, Activity: s.Activity, Interactive: s.Interactive}
		for _, sub := range s.Subcharts {
			jc, err := chartToJSON(sub)
			if err != nil {
				return nil, err
			}
			js.Subcharts = append(js.Subcharts, *jc)
		}
		out.States = append(out.States, js)
	}
	for _, t := range c.Transitions {
		jt := Transition{From: t.From, To: t.To, Prob: t.Prob, Event: t.Event, Cond: t.Cond}
		for _, a := range t.Actions {
			kind, ok := actionStrings[a.Kind]
			if !ok {
				return nil, fmt.Errorf("chart %q: unknown action kind %d", c.Name, a.Kind)
			}
			jt.Actions = append(jt.Actions, Action{Kind: kind, Target: a.Target})
		}
		out.Transitions = append(out.Transitions, jt)
	}
	return out, nil
}
