package wfjson

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"performa/internal/spec"
	"performa/internal/workload"
)

const sampleDoc = `{
  "environment": {
    "types": [
      {"name": "orb", "kind": "communication", "mean_service": 0.0005, "mttf": 43200, "mttr": 10},
      {"name": "engine", "kind": "engine", "mean_service": 0.001, "service_scv": 2, "mttf": 10080, "mttr": 10},
      {"name": "appsrv", "kind": "application", "mean_service": 0.0015}
    ]
  },
  "workflows": [
    {
      "name": "demo",
      "arrival_rate": 2,
      "chart": {
        "name": "demo",
        "initial": "init",
        "final": "done",
        "states": [
          {"name": "init"},
          {"name": "order", "activity": "Order", "interactive": true},
          {"name": "ship", "subcharts": [
            {
              "name": "shipping",
              "initial": "s0",
              "final": "s2",
              "states": [
                {"name": "s0"},
                {"name": "s1", "activity": "Ship"},
                {"name": "s2"}
              ],
              "transitions": [
                {"from": "s0", "to": "s1", "prob": 1},
                {"from": "s1", "to": "s2", "prob": 1}
              ]
            }
          ]},
          {"name": "done"}
        ],
        "transitions": [
          {"from": "init", "to": "order", "prob": 1},
          {"from": "order", "to": "ship", "prob": 1,
           "event": "Order_DONE", "cond": "!Cancelled",
           "actions": [{"kind": "set-true", "target": "Paid"}]},
          {"from": "ship", "to": "done", "prob": 1}
        ]
      },
      "activities": [
        {"name": "Order", "mean_duration": 5, "load": {"orb": 2, "engine": 3}},
        {"name": "Ship", "mean_duration": 30, "stages": 3, "load": {"orb": 2, "engine": 3, "appsrv": 3}}
      ]
    }
  ]
}`

func TestDecodeSampleDocument(t *testing.T) {
	env, flows, err := Decode(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if env.K() != 3 {
		t.Errorf("K = %d", env.K())
	}
	// scv defaults to 1: second moment = 2·mean².
	orb := env.Type(0)
	if math.Abs(orb.ServiceSecondMoment-2*0.0005*0.0005) > 1e-15 {
		t.Errorf("orb second moment = %v", orb.ServiceSecondMoment)
	}
	// explicit scv 2: second moment = 3·mean².
	eng := env.Type(1)
	if math.Abs(eng.ServiceSecondMoment-3*0.001*0.001) > 1e-15 {
		t.Errorf("engine second moment = %v", eng.ServiceSecondMoment)
	}
	if eng.FailureRate != 1.0/10080 || eng.RepairRate != 0.1 {
		t.Errorf("engine rates = %v, %v", eng.FailureRate, eng.RepairRate)
	}
	// appsrv never fails.
	if env.Type(2).FailureRate != 0 {
		t.Errorf("appsrv failure rate = %v", env.Type(2).FailureRate)
	}
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	w := flows[0]
	if w.ArrivalRate != 2 {
		t.Errorf("arrival rate = %v", w.ArrivalRate)
	}
	if w.Profiles["Ship"].DurationStages != 3 {
		t.Errorf("stages = %d", w.Profiles["Ship"].DurationStages)
	}
	// The workflow builds into a valid model.
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	if m.Turnaround() <= 0 {
		t.Errorf("turnaround = %v", m.Turnaround())
	}
	// ECA data survived.
	for _, tr := range w.Chart.Outgoing("order") {
		if tr.Event != "Order_DONE" || tr.Cond != "!Cancelled" || len(tr.Actions) != 1 {
			t.Errorf("ECA lost: %+v", tr)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"syntax", `{`, "parsing"},
		{"unknown field", `{"bogus": 1}`, "bogus"},
		{"unknown kind", `{"environment":{"types":[{"name":"x","kind":"quantum","mean_service":1}]},"workflows":[]}`, "unknown kind"},
		{"no workflows", `{"environment":{"types":[{"name":"x","kind":"engine","mean_service":1}]},"workflows":[]}`, "no workflows"},
		{"negative scv", `{"environment":{"types":[{"name":"x","kind":"engine","mean_service":1,"service_scv":-1}]},"workflows":[]}`, "scv"},
	}
	for _, tc := range cases {
		_, _, err := Decode(strings.NewReader(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeBadChart(t *testing.T) {
	doc := strings.Replace(sampleDoc, `{"from": "ship", "to": "done", "prob": 1}`,
		`{"from": "ship", "to": "done", "prob": 0.5}`, 1)
	if _, _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Error("invalid probabilities accepted")
	}
}

func TestDecodeBadActionKind(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"kind": "set-true"`, `"kind": "explode"`, 1)
	if _, _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Error("unknown action kind accepted")
	}
}

func TestRoundTripEPWorkflow(t *testing.T) {
	env := workload.PaperEnvironment()
	flows := []*spec.Workflow{workload.EPWorkflow(1.5)}
	var buf bytes.Buffer
	if err := Encode(&buf, env, flows); err != nil {
		t.Fatal(err)
	}
	env2, flows2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Models of original and round-tripped specs agree.
	m1, err := spec.Build(flows[0], env)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := spec.Build(flows2[0], env2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.Turnaround()-m2.Turnaround()) > 1e-9 {
		t.Errorf("turnaround %v vs %v", m1.Turnaround(), m2.Turnaround())
	}
	r1, r2 := m1.ExpectedRequests(), m2.ExpectedRequests()
	for x := range r1 {
		if math.Abs(r1[x]-r2[x]) > 1e-9 {
			t.Errorf("requests[%d]: %v vs %v", x, r1[x], r2[x])
		}
	}
	if flows2[0].ArrivalRate != 1.5 {
		t.Errorf("arrival rate = %v", flows2[0].ArrivalRate)
	}
	// Failure data survives.
	if env2.Type(0).FailureRate != env.Type(0).FailureRate {
		t.Errorf("failure rate changed")
	}
}

func TestRoundTripStagesAndInteractive(t *testing.T) {
	env := workload.PaperEnvironment()
	w := workload.EPWorkflow(1)
	p := w.Profiles["PickGoods"]
	p.DurationStages = 4
	w.Profiles["PickGoods"] = p
	var buf bytes.Buffer
	if err := Encode(&buf, env, []*spec.Workflow{w}); err != nil {
		t.Fatal(err)
	}
	_, flows, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if flows[0].Profiles["PickGoods"].DurationStages != 4 {
		t.Error("stage count lost")
	}
	if !flows[0].Chart.States["NewOrder_S"].Interactive {
		t.Error("interactive flag lost")
	}
}
