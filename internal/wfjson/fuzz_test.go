package wfjson

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the JSON entry point: arbitrary input must either
// produce a valid (environment, workflows) pair that re-encodes and
// re-decodes to an equivalent model, or a clean error — never a panic.
// The seed corpus runs in every regular `go test`; `go test -fuzz
// FuzzDecode ./internal/wfjson` explores further.
func FuzzDecode(f *testing.F) {
	f.Add(sampleDoc)
	f.Add(`{`)
	f.Add(`{"environment":{"types":[]},"workflows":[]}`)
	f.Add(`{"environment":{"types":[{"name":"x","kind":"engine","mean_service":1}]},
	       "workflows":[{"name":"w","arrival_rate":-5,"chart":{"name":"w","initial":"i","final":"f",
	       "states":[{"name":"i"},{"name":"a","activity":"A"},{"name":"f"}],
	       "transitions":[{"from":"i","to":"a","prob":1},{"from":"a","to":"f","prob":1}]},
	       "activities":[{"name":"A","mean_duration":1}]}]}`)
	f.Add(strings.Replace(sampleDoc, `"prob": 1`, `"prob": 1e308`, 1))
	f.Add(strings.Replace(sampleDoc, `"mean_service": 0.0005`, `"mean_service": -1`, 1))
	f.Add(strings.Replace(sampleDoc, `"initial": "init"`, `"initial": "nope"`, 1))

	f.Fuzz(func(t *testing.T, doc string) {
		env, flows, err := Decode(strings.NewReader(doc))
		if err != nil {
			return // clean rejection is fine
		}
		// Anything accepted must survive a round trip.
		var buf bytes.Buffer
		if err := Encode(&buf, env, flows); err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
		if _, _, err := Decode(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
