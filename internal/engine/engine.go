// Package engine is a runnable miniature of the distributed WFMS of
// Section 2: workflow engines interpret statechart specifications,
// automated activities are dispatched through an ORB-style message bus to
// application-server worker pools, interactive activities go to a
// worklist where simulated users complete them, and every step emits
// audit-trail records (package audit) that the calibration component
// (package calibrate) consumes.
//
// The runtime executes concurrently on goroutines with wall-clock
// durations scaled down by TimeScale, so a workflow whose activities take
// seconds in the model runs in milliseconds in tests while producing
// audit trails stamped in model time.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"performa/internal/audit"
	"performa/internal/dist"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// Options configures a runtime.
type Options struct {
	// TimeScale is the wall-clock seconds per model time unit. The
	// default 0.001 runs a 1-unit activity in one millisecond.
	TimeScale float64
	// AppWorkers bounds concurrent automated-activity executions per
	// application server type (the replica count of that type); zero
	// entries default to 1. Keyed by server type name.
	AppWorkers map[string]int
	// Users is the number of simulated worklist users completing
	// interactive activities; zero means 4.
	Users int
	// Seed makes branch choices and durations reproducible.
	Seed uint64
	// ServerReplicas sizes the per-server-type request pools: each
	// service request a running activity emits must hold one of the
	// type's replica slots for its service duration, and the audit
	// trail records the measured queueing delay. Zero or missing
	// entries mean 16 slots (effectively uncontended), so trails carry
	// realistic waiting times only for the types a study deliberately
	// constrains. Keyed by server type name.
	ServerReplicas map[string]int
}

func (o Options) withDefaults() Options {
	if o.TimeScale <= 0 {
		o.TimeScale = 0.001
	}
	if o.Users <= 0 {
		o.Users = 4
	}
	return o
}

// Runtime executes workflow instances and records their audit trail.
type Runtime struct {
	env   *spec.Environment
	opts  Options
	trail *audit.Trail

	start    time.Time
	instSeq  atomic.Uint64
	rngMu    sync.Mutex
	rng      *dist.RNG
	appPools map[string]chan struct{} // semaphore per application type
	svcPools map[string]chan struct{} // replica slots per server type
	userSem  chan struct{}
}

// New builds a runtime over the environment.
func New(env *spec.Environment, opts Options) *Runtime {
	opts = opts.withDefaults()
	rt := &Runtime{
		env:      env,
		opts:     opts,
		trail:    audit.NewTrail(),
		start:    time.Now(),
		rng:      dist.NewRNG(opts.Seed),
		appPools: map[string]chan struct{}{},
		userSem:  make(chan struct{}, opts.Users),
	}
	rt.svcPools = make(map[string]chan struct{}, env.K())
	for x := 0; x < env.K(); x++ {
		st := env.Type(x)
		if st.Kind == spec.Application {
			n := opts.AppWorkers[st.Name]
			if n <= 0 {
				n = 1
			}
			rt.appPools[st.Name] = make(chan struct{}, n)
		}
		slots := opts.ServerReplicas[st.Name]
		if slots <= 0 {
			slots = 16
		}
		rt.svcPools[st.Name] = make(chan struct{}, slots)
	}
	return rt
}

// Trail returns the audit trail collected so far.
func (rt *Runtime) Trail() *audit.Trail { return rt.trail }

// now returns the current model time.
func (rt *Runtime) now() float64 {
	return time.Since(rt.start).Seconds() / rt.opts.TimeScale
}

// sleepModel blocks for the given model-time duration.
func (rt *Runtime) sleepModel(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d * rt.opts.TimeScale * float64(time.Second)))
}

func (rt *Runtime) record(r audit.Record) {
	r.Time = rt.now()
	rt.trail.Append(r)
}

// random runs fn under the RNG lock and returns its result, keeping the
// concurrent instance goroutines deterministic enough for statistics
// while sharing one seeded stream.
func (rt *Runtime) random(fn func(r *dist.RNG) float64) float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return fn(rt.rng)
}

// RunInstances executes n instances of the workflow concurrently and
// blocks until all complete or the context is cancelled. It returns the
// number of instances completed.
func (rt *Runtime) RunInstances(ctx context.Context, w *spec.Workflow, n int, interarrival float64) (int, error) {
	if err := w.Validate(rt.env); err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.runInstance(ctx, w); err == nil {
				completed.Add(1)
			}
		}()
		if interarrival > 0 && i < n-1 {
			rt.sleepModel(rt.random(func(r *dist.RNG) float64 { return r.Exp(1 / interarrival) }))
		}
	}
	wg.Wait()
	return int(completed.Load()), ctx.Err()
}

// runInstance executes one workflow instance.
func (rt *Runtime) runInstance(ctx context.Context, w *spec.Workflow) error {
	id := rt.instSeq.Add(1)
	rt.record(audit.Record{Kind: audit.InstanceStarted, Workflow: w.Name, Instance: id})
	vars := newVarStore()
	err := rt.runChart(ctx, w, w.Chart, id, vars)
	if err != nil {
		return err
	}
	rt.record(audit.Record{Kind: audit.InstanceCompleted, Workflow: w.Name, Instance: id})
	return nil
}

// varStore holds the instance's condition variables (the C part of the
// ECA rules), shared across orthogonal components.
type varStore struct {
	mu   sync.Mutex
	vars map[string]bool
}

func newVarStore() *varStore { return &varStore{vars: map[string]bool{}} }

func (v *varStore) set(name string, val bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.vars[name] = val
}

// known reports whether the variable has been set, and its value.
func (v *varStore) known(name string) (val, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	val, ok = v.vars[name]
	return val, ok
}

// runChart interprets one chart level.
func (rt *Runtime) runChart(ctx context.Context, w *spec.Workflow, chart *statechart.Chart, id uint64, vars *varStore) error {
	cur := chart.Initial
	const maxSteps = 1_000_000
	for step := 0; ; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if step > maxSteps {
			return fmt.Errorf("engine: instance %d exceeded %d steps in chart %q", id, maxSteps, chart.Name)
		}
		state := chart.States[cur]
		rt.record(audit.Record{Kind: audit.StateEntered, Workflow: w.Name, Instance: id, Chart: chart.Name, State: cur})

		switch {
		case state.Activity != "":
			if err := rt.executeActivity(ctx, w, state, id); err != nil {
				return err
			}
			// Completion sets the <activity>_DONE condition the
			// paper's charts synchronize on.
			vars.set(state.Activity+"_DONE", true)
		case len(state.Subcharts) > 0:
			// Orthogonal components: run all subcharts in parallel
			// and join on their final states.
			var wg sync.WaitGroup
			errs := make([]error, len(state.Subcharts))
			for i, sub := range state.Subcharts {
				wg.Add(1)
				go func(i int, sub *statechart.Chart) {
					defer wg.Done()
					errs[i] = rt.runChart(ctx, w, sub, id, vars)
				}(i, sub)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
		}

		rt.record(audit.Record{Kind: audit.StateLeft, Workflow: w.Name, Instance: id, Chart: chart.Name, State: cur})
		if cur == chart.Final {
			return nil
		}
		next, err := rt.fireTransition(chart, cur, vars)
		if err != nil {
			return err
		}
		cur = next
	}
}

// fireTransition picks the next state: transitions whose condition
// variable is known false are disabled; among the enabled ones the choice
// follows the (renormalized) branching probabilities, and the chosen
// transition's actions execute.
func (rt *Runtime) fireTransition(chart *statechart.Chart, from string, vars *varStore) (string, error) {
	out := chart.Outgoing(from)
	var enabled []*statechart.Transition
	var total float64
	for _, t := range out {
		if t.Cond != "" {
			name, want := t.Cond, true
			if name[0] == '!' {
				name, want = name[1:], false
			}
			if val, ok := vars.known(name); ok && val != want {
				continue // condition known to block this transition
			}
		}
		enabled = append(enabled, t)
		total += t.Prob
	}
	if len(enabled) == 0 || total <= 0 {
		return "", fmt.Errorf("engine: no enabled transition out of state %q in chart %q", from, chart.Name)
	}
	u := rt.random(func(r *dist.RNG) float64 { return r.Float64() }) * total
	var cum float64
	chosen := enabled[len(enabled)-1]
	for _, t := range enabled {
		cum += t.Prob
		if u < cum {
			chosen = t
			break
		}
	}
	for _, a := range chosen.Actions {
		switch a.Kind {
		case statechart.ActionSetTrue:
			vars.set(a.Target, true)
		case statechart.ActionSetFalse:
			vars.set(a.Target, false)
		}
		// ActionStart and ActionRaise are handled implicitly: entering
		// the target state starts its activity, and events are not
		// needed by the probabilistic interpreter.
	}
	return chosen.To, nil
}

// executeActivity performs one activity: it acquires an application
// worker (automated) or a user (interactive), holds it for the sampled
// duration, and emits the service requests of the activity's load vector.
func (rt *Runtime) executeActivity(ctx context.Context, w *spec.Workflow, state *statechart.State, id uint64) error {
	prof := w.Profiles[state.Activity]
	rt.record(audit.Record{Kind: audit.ActivityStarted, Workflow: w.Name, Instance: id, Activity: state.Activity})

	var sem chan struct{}
	if state.Interactive {
		sem = rt.userSem
	} else {
		sem = rt.appSemFor(prof)
	}
	if sem != nil {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	// Exponentially distributed activity duration around the profile
	// mean, like the CTMC residence times of the model.
	d := rt.random(func(r *dist.RNG) float64 { return r.Exp(1 / prof.MeanDuration) })
	rt.sleepModel(d)

	// Execute the service requests the activity induced: each request
	// queues for one of its server type's replica slots, holds it for
	// the sampled service time, and the measured queueing delay goes
	// into the audit trail. Requests run concurrently alongside the
	// activity and join before the activity completes.
	var reqs sync.WaitGroup
	for typeName, load := range prof.Load {
		x, ok := rt.env.Index(typeName)
		if !ok {
			continue
		}
		st := rt.env.Type(x)
		n := int(load)
		if frac := load - float64(n); frac > 0 {
			if rt.random(func(r *dist.RNG) float64 { return r.Float64() }) < frac {
				n++
			}
		}
		for j := 0; j < n; j++ {
			reqs.Add(1)
			go func(typeName string, st spec.ServerType) {
				defer reqs.Done()
				rt.serveRequest(ctx, w, id, state.Activity, typeName, st)
			}(typeName, st)
		}
	}
	reqs.Wait()

	rt.record(audit.Record{Kind: audit.ActivityCompleted, Workflow: w.Name, Instance: id, Activity: state.Activity})
	return nil
}

// serveRequest processes one service request against a server type's
// replica pool: wait for a slot, hold it for the service time, record
// both durations (in model time) in the audit trail.
func (rt *Runtime) serveRequest(ctx context.Context, w *spec.Workflow, id uint64, activity, typeName string, st spec.ServerType) {
	queuedAt := rt.now()
	pool := rt.svcPools[typeName]
	select {
	case pool <- struct{}{}:
	case <-ctx.Done():
		return
	}
	waiting := rt.now() - queuedAt
	svc := rt.random(func(r *dist.RNG) float64 { return r.Exp(1 / st.MeanService) })
	rt.sleepModel(svc)
	<-pool
	rt.record(audit.Record{
		Kind:       audit.ServiceRequest,
		Workflow:   w.Name,
		Instance:   id,
		Activity:   activity,
		ServerType: typeName,
		Waiting:    waiting,
		Service:    svc,
	})
}

// appSemFor finds the application pool the activity runs on: the first
// application server type in its load vector, if any.
func (rt *Runtime) appSemFor(prof spec.ActivityProfile) chan struct{} {
	for typeName := range prof.Load {
		if x, ok := rt.env.Index(typeName); ok && rt.env.Type(x).Kind == spec.Application {
			return rt.appPools[typeName]
		}
	}
	return nil
}
