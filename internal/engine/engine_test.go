package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"performa/internal/audit"
	"performa/internal/calibrate"
	"performa/internal/spec"
	"performa/internal/statechart"
)

func testEnv(t *testing.T) *spec.Environment {
	t.Helper()
	b, b2 := spec.ExpServiceMoments(0.05)
	env, err := spec.NewEnvironment(
		spec.ServerType{Name: "orb", Kind: spec.Communication, MeanService: b, ServiceSecondMoment: b2},
		spec.ServerType{Name: "eng", Kind: spec.Engine, MeanService: b, ServiceSecondMoment: b2},
		spec.ServerType{Name: "app", Kind: spec.Application, MeanService: b, ServiceSecondMoment: b2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func opts(seed uint64) Options {
	return Options{TimeScale: 0.0002, Seed: seed, AppWorkers: map[string]int{"app": 8}, Users: 8}
}

func linearWorkflow() *spec.Workflow {
	chart := statechart.NewBuilder("linear").
		Initial("init").
		Activity("work", "Work").
		Final("done").
		Transition("init", "work", 1).
		Transition("work", "done", 1).
		MustBuild()
	return &spec.Workflow{
		Name:  "linear",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"Work": {Name: "Work", MeanDuration: 1,
				Load: map[string]float64{"orb": 2, "eng": 1, "app": 1}},
		},
	}
}

func branchWorkflow(p float64) *spec.Workflow {
	chart := statechart.NewBuilder("branchy").
		Initial("init").
		Activity("decide", "Decide").
		Activity("yes", "Yes").
		Activity("no", "No").
		Final("done").
		Transition("init", "decide", 1).
		Transition("decide", "yes", p).
		Transition("decide", "no", 1-p).
		Transition("yes", "done", 1).
		Transition("no", "done", 1).
		MustBuild()
	mk := func(n string) spec.ActivityProfile {
		return spec.ActivityProfile{Name: n, MeanDuration: 0.5, Load: map[string]float64{"eng": 1}}
	}
	return &spec.Workflow{
		Name:  "branchy",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"Decide": mk("Decide"), "Yes": mk("Yes"), "No": mk("No"),
		},
	}
}

func TestRunInstancesLinear(t *testing.T) {
	env := testEnv(t)
	rt := New(env, opts(1))
	done, err := rt.RunInstances(context.Background(), linearWorkflow(), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	tr := rt.Trail()
	if got := len(tr.Filter(audit.InstanceStarted)); got != 20 {
		t.Errorf("instance_started = %d", got)
	}
	if got := len(tr.Filter(audit.InstanceCompleted)); got != 20 {
		t.Errorf("instance_completed = %d", got)
	}
	if got := len(tr.Filter(audit.ActivityStarted)); got != 20 {
		t.Errorf("activity_started = %d", got)
	}
	// Each Work execution emits 2 orb + 1 eng + 1 app requests.
	svc := tr.Filter(audit.ServiceRequest)
	counts := map[string]int{}
	for _, r := range svc {
		counts[r.ServerType]++
	}
	if counts["orb"] != 40 || counts["eng"] != 20 || counts["app"] != 20 {
		t.Errorf("service counts = %v", counts)
	}
}

func TestRunInstancesInvalidWorkflow(t *testing.T) {
	env := testEnv(t)
	rt := New(env, opts(1))
	w := linearWorkflow()
	delete(w.Profiles, "Work")
	if _, err := rt.RunInstances(context.Background(), w, 1, 0); err == nil {
		t.Error("invalid workflow accepted")
	}
}

func TestBranchProbabilitiesHonored(t *testing.T) {
	env := testEnv(t)
	rt := New(env, opts(7))
	const n = 600
	done, err := rt.RunInstances(context.Background(), branchWorkflow(0.7), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	yes := 0
	for _, r := range rt.Trail().Filter(audit.ActivityStarted) {
		if r.Activity == "Yes" {
			yes++
		}
	}
	if frac := float64(yes) / n; math.Abs(frac-0.7) > 0.06 {
		t.Errorf("yes fraction = %v, want ≈0.7", frac)
	}
}

func TestParallelSubcharts(t *testing.T) {
	env := testEnv(t)
	mkSub := func(name, act string) *statechart.Chart {
		return statechart.NewBuilder(name).
			Initial("i").
			Activity("s", act).
			Final("f").
			Transition("i", "s", 1).
			Transition("s", "f", 1).
			MustBuild()
	}
	chart := statechart.NewBuilder("par").
		Initial("init").
		Nested("both", mkSub("subA", "ActA"), mkSub("subB", "ActB")).
		Final("done").
		Transition("init", "both", 1).
		Transition("both", "done", 1).
		MustBuild()
	mk := func(n string) spec.ActivityProfile {
		return spec.ActivityProfile{Name: n, MeanDuration: 0.5, Load: map[string]float64{"app": 1}}
	}
	w := &spec.Workflow{
		Name:     "par",
		Chart:    chart,
		Profiles: map[string]spec.ActivityProfile{"ActA": mk("ActA"), "ActB": mk("ActB")},
	}
	rt := New(env, opts(3))
	done, err := rt.RunInstances(context.Background(), w, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 10 {
		t.Fatalf("completed %d", done)
	}
	counts := map[string]int{}
	for _, r := range rt.Trail().Filter(audit.ActivityCompleted) {
		counts[r.Activity]++
	}
	if counts["ActA"] != 10 || counts["ActB"] != 10 {
		t.Errorf("parallel activity counts = %v", counts)
	}
	// Both subcharts appear in the trail under their own chart names.
	charts := map[string]bool{}
	for _, r := range rt.Trail().Filter(audit.StateEntered) {
		charts[r.Chart] = true
	}
	if !charts["subA"] || !charts["subB"] {
		t.Errorf("charts in trail = %v", charts)
	}
}

func TestECAConditionsGateTransitions(t *testing.T) {
	env := testEnv(t)
	// decide sets flag=false on its outgoing transition; the guarded
	// branch must never fire.
	chart := statechart.NewBuilder("guarded").
		Initial("init").
		Activity("decide", "Decide").
		Activity("guardedAct", "Guarded").
		Activity("fallback", "Fallback").
		Activity("hub", "Hub").
		Final("done").
		Transition("init", "decide", 1).
		TransitionECA("decide", "hub", 1, "", "", []statechart.Action{{Kind: statechart.ActionSetFalse, Target: "flag"}}).
		Transition("hub", "guardedAct", 0.5).
		Transition("hub", "fallback", 0.5).
		Transition("guardedAct", "done", 1).
		Transition("fallback", "done", 1).
		MustBuild()
	// Guard the 0.5-branch on flag being true — it is always false.
	for _, tr := range chart.Outgoing("hub") {
		if tr.To == "guardedAct" {
			tr.Cond = "flag"
		}
	}
	mk := func(n string) spec.ActivityProfile {
		return spec.ActivityProfile{Name: n, MeanDuration: 0.2, Load: map[string]float64{"eng": 1}}
	}
	w := &spec.Workflow{
		Name:  "guarded",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"Decide": mk("Decide"), "Guarded": mk("Guarded"),
			"Fallback": mk("Fallback"), "Hub": mk("Hub"),
		},
	}
	rt := New(env, opts(5))
	done, err := rt.RunInstances(context.Background(), w, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 50 {
		t.Fatalf("completed %d", done)
	}
	for _, r := range rt.Trail().Filter(audit.ActivityStarted) {
		if r.Activity == "Guarded" {
			t.Fatal("guarded branch fired despite false condition")
		}
	}
}

func TestDurationEstimatesAtCoarserScale(t *testing.T) {
	// With multi-millisecond sleeps the scheduler overhead is
	// negligible and the measured activity duration must track the
	// specified mean.
	env := testEnv(t)
	// Plenty of app workers and request slots so the measured
	// turnaround is pure execution, not queueing for bounded pools.
	rt := New(env, Options{TimeScale: 0.004, Seed: 21, Users: 8,
		AppWorkers:     map[string]int{"app": 200},
		ServerReplicas: map[string]int{"orb": 400, "eng": 400, "app": 400}})
	w := linearWorkflow() // Work has MeanDuration 1 → 4 ms sleeps
	const n = 150
	done, err := rt.RunInstances(context.Background(), w, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("completed %d", done)
	}
	est, err := calibrate.FromTrail(rt.Trail())
	if err != nil {
		t.Fatal(err)
	}
	mp := est.ActivityDurations["Work"]
	if mp == nil {
		t.Fatal("no duration estimate")
	}
	// Exponential mean 1 from 150 samples: stderr ≈ 0.082; allow 4σ
	// plus a generous overhead allowance. The race detector slows the
	// scheduler enough to inflate sleep-based durations further.
	upper := 1.6
	if raceEnabled {
		upper = 3.5
	}
	if mp.Mean < 0.6 || mp.Mean > upper {
		t.Errorf("estimated duration mean = %v, want ≈1", mp.Mean)
	}
}

func TestConstrainedServerPoolMeasuresWaiting(t *testing.T) {
	// Give the engine type a single replica slot while many instances
	// emit requests concurrently: the audit trail must record positive
	// queueing delays, and calibrate must surface them.
	env := testEnv(t)
	rt := New(env, Options{
		TimeScale:      0.0005,
		Seed:           13,
		AppWorkers:     map[string]int{"app": 64},
		Users:          64,
		ServerReplicas: map[string]int{"eng": 1},
	})
	w := linearWorkflow() // Work loads orb:2 eng:1 app:1
	done, err := rt.RunInstances(context.Background(), w, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 60 {
		t.Fatalf("completed %d", done)
	}
	est, err := calibrate.FromTrail(rt.Trail())
	if err != nil {
		t.Fatal(err)
	}
	wm := est.WaitingMoments["eng"]
	if wm == nil || wm.N != 60 {
		t.Fatalf("waiting moments = %+v", wm)
	}
	if wm.Mean <= 0 {
		t.Errorf("constrained pool recorded zero mean waiting")
	}
	// The uncontended orb pool (16 slots, 2 requests per activity)
	// should wait far less than the single-slot engine pool.
	om := est.WaitingMoments["orb"]
	if om == nil {
		t.Fatal("no orb waiting moments")
	}
	if om.Mean >= wm.Mean {
		t.Errorf("orb waiting %v not below constrained engine %v", om.Mean, wm.Mean)
	}
	// Service moments are recorded alongside.
	if sm := est.ServiceMoments["eng"]; sm == nil || sm.Mean <= 0 {
		t.Errorf("service moments = %+v", sm)
	}
}

func TestContextCancellation(t *testing.T) {
	env := testEnv(t)
	rt := New(env, Options{TimeScale: 0.05, Seed: 1}) // slow: 50ms per unit
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done, err := rt.RunInstances(ctx, linearWorkflow(), 50, 0)
	if err == nil {
		t.Error("expected context error")
	}
	if done >= 50 {
		t.Errorf("completed %d despite cancellation", done)
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	// Run the engine, estimate from its trail, and check the estimates
	// recover the specification: the full mapping→calibration loop of
	// Section 7.1.
	env := testEnv(t)
	rt := New(env, opts(11))
	w := branchWorkflow(0.3)
	const n = 800
	if _, err := rt.RunInstances(context.Background(), w, n, 0); err != nil {
		t.Fatal(err)
	}
	est, err := calibrate.FromTrail(rt.Trail())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := est.TransitionProb("branchy", "decide", "yes", 2, 0)
	if !ok {
		t.Fatal("no departures observed")
	}
	if math.Abs(p-0.3) > 0.05 {
		t.Errorf("estimated P(decide→yes) = %v, want ≈0.3", p)
	}
	// At this aggressive time scale (0.1 ms per activity), scheduler
	// overhead inflates observed durations, so only a lower bound and a
	// sanity cap are checked here; TestDurationEstimatesAtCoarserScale
	// verifies accuracy with realistic sleeps.
	if mp := est.ActivityDurations["Decide"]; mp == nil || mp.Mean < 0.4 || mp.Mean > 50 {
		t.Errorf("estimated duration = %+v, want within [0.4, 50]", mp)
	}
	// Applying the estimates yields a valid workflow close to the
	// original.
	w2 := branchWorkflow(0.5) // start from wrong designer guesses
	if err := est.ApplyToWorkflow(w2, env, calibrate.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, tr := range w2.Chart.Outgoing("decide") {
		if tr.To == "yes" && math.Abs(tr.Prob-0.3) > 0.05 {
			t.Errorf("recalibrated P = %v, want ≈0.3", tr.Prob)
		}
	}
}
