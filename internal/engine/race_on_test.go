//go:build race

package engine

// raceEnabled widens wall-clock tolerances when the race detector's
// instrumentation slows scheduling down.
const raceEnabled = true
