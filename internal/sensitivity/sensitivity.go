// Package sensitivity computes finite-difference sensitivities of the
// performability metrics — the per-type waiting times W^Y (and the
// per-workflow delays they induce) and the unavailability — with
// respect to every model parameter: per-type failure rate λ_x, repair
// rate μ_x, service-time moments b_x and b_x^(2), per-workflow arrival
// rate ξ_t, and the replica counts Y_x themselves.
//
// Derivatives are central differences with an adaptive step: each side
// is evaluated on a perturbed copy of the analysis routed through an
// evaluator derived from the caller's warm one
// (performability.Evaluator.Derive), so availability marginals are
// always reused and degraded-state solves are reused whenever the
// perturbed parameter provably leaves them unchanged (failure and
// repair rates). When a side is infeasible — a negative rate, a second
// moment dipping below the squared mean — the difference falls back to
// one-sided, and the step shrinks before the parameter is declared
// unevaluable. Replica counts are discrete, so their "derivative" is a
// ±1 difference.
//
// The result is a table ranked by elasticity (relative metric change
// per relative parameter change), each entry carrying a human-readable
// attribution — the currency the reconfiguration advisories trade in.
package sensitivity

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
)

// Kind names one parameter family.
type Kind string

const (
	// FailureRate is λ_x, a server type's per-replica failure rate.
	FailureRate Kind = "failure_rate"
	// RepairRate is μ_x, a server type's per-replica repair rate.
	RepairRate Kind = "repair_rate"
	// MeanService is b_x, a server type's mean service time.
	MeanService Kind = "mean_service"
	// ServiceSecondMoment is b_x^(2), the second service-time moment.
	ServiceSecondMoment Kind = "service_second_moment"
	// ArrivalRate is ξ_t, a workflow type's arrival rate.
	ArrivalRate Kind = "arrival_rate"
	// Replicas is Y_x, a server type's replica count (discrete).
	Replicas Kind = "replicas"
)

// Options tunes the finite-difference computation.
type Options struct {
	// RelStep is the relative perturbation step h/θ; zero means 1e-3.
	// Parameters whose base value is zero are probed with an absolute
	// step of RelStep instead.
	RelStep float64
	// Workers bounds the parameter-level parallelism; zero means
	// min(NumCPU, 8), negative means sequential.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.RelStep <= 0 {
		o.RelStep = 1e-3
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Entry is the sensitivity of the metrics to one parameter.
type Entry struct {
	// Kind and Index identify the parameter: Index is the server-type
	// index x for per-type kinds and the workflow index t for arrival
	// rates.
	Kind  Kind `json:"kind"`
	Index int  `json:"index"`
	// Target is the server-type or workflow name.
	Target string `json:"target"`
	// Value is the parameter's base value (the replica count for
	// Kind == Replicas).
	Value float64 `json:"value"`
	// DMaxWaiting and DUnavailability are ∂(max_x W^Y_x)/∂θ and
	// ∂(1−A)/∂θ; for replicas they are per-replica differences.
	DMaxWaiting     float64 `json:"d_max_waiting"`
	DUnavailability float64 `json:"d_unavailability"`
	// DWorkflowDelays[t] is the derivative of workflow t's expected
	// per-instance queueing delay Σ_x r_{x,t}·W^Y_x.
	DWorkflowDelays []float64 `json:"d_workflow_delays,omitempty"`
	// WaitingElasticity and UnavailabilityElasticity are the
	// dimensionless (θ/metric)·∂metric/∂θ — percent metric change per
	// percent parameter change.
	WaitingElasticity        float64 `json:"waiting_elasticity"`
	UnavailabilityElasticity float64 `json:"unavailability_elasticity"`
	// Rank is the score the table is ordered by: the largest finite
	// absolute elasticity.
	Rank float64 `json:"rank"`
	// Method records how the derivative was obtained: "central",
	// "forward", "backward", "central_discrete", "forward_discrete",
	// or "failed" when no perturbation was evaluable.
	Method string `json:"method"`
	// Step is the final step size h (1 for discrete differences).
	Step float64 `json:"step"`
	// Attribution is the human-readable reading of the entry.
	Attribution string `json:"attribution"`
}

// Table is the full ranked sensitivity table for one configuration.
type Table struct {
	// Config is the replication vector the table was computed at.
	Config []int `json:"config"`
	// BaseMaxWaiting, BaseUnavailability, and BaseWorkflowDelays are
	// the unperturbed metrics the derivatives refer to.
	BaseMaxWaiting     float64   `json:"base_max_waiting"`
	BaseUnavailability float64   `json:"base_unavailability"`
	BaseWorkflowDelays []float64 `json:"base_workflow_delays"`
	// Entries is ranked worst-first by Rank.
	Entries []Entry `json:"entries"`
	// Summary names the dominant parameter per metric.
	Summary string `json:"summary"`
}

// point bundles the three metrics one evaluation yields.
type point struct {
	maxWaiting     float64
	unavailability float64
	delays         []float64
}

// paramSpec describes one continuous parameter: how to evaluate the
// metrics with the parameter set to θ.
type paramSpec struct {
	kind   Kind
	index  int
	target string
	value  float64
	eval   func(ctx context.Context, theta float64) (point, error)
}

// Compute builds the sensitivity table for cfg through the given warm
// evaluator. The evaluator's caches are reused wherever sharing is
// sound, so a table over a model whose configuration-search states are
// already cached costs only the genuinely new perturbed solves.
func Compute(ctx context.Context, ev *performability.Evaluator, cfg perf.Config, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	a := ev.Analysis()
	env := a.Env()
	k := env.K()
	if len(cfg.Replicas) != k {
		return nil, fmt.Errorf("sensitivity: %d replica counts for %d server types", len(cfg.Replicas), k)
	}

	base, err := evalPoint(ctx, ev, a, cfg)
	if err != nil {
		return nil, err
	}

	specs := paramSpecs(ev, a, cfg)
	entries := make([]Entry, len(specs)+k)

	// Continuous parameters, fanned out over the worker pool. Each
	// entry's evaluations are independent; derived evaluators share the
	// concurrency-safe caches.
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, ps := range specs {
		wg.Add(1)
		go func(i int, ps paramSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			entries[i] = continuousEntry(ctx, ps, base, opts)
		}(i, ps)
	}
	// Replica counts, through the base evaluator itself (same model,
	// different Y — exactly what its caches exist for).
	for x := 0; x < k; x++ {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			entries[len(specs)+x] = replicaEntry(ctx, ev, a, cfg, x, base)
		}(x)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for i := range entries {
		finishEntry(&entries[i], base)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Rank > entries[j].Rank })

	t := &Table{
		Config:             append([]int(nil), cfg.Replicas...),
		BaseMaxWaiting:     base.maxWaiting,
		BaseUnavailability: base.unavailability,
		BaseWorkflowDelays: base.delays,
		Entries:            entries,
	}
	t.Summary = summarize(entries)
	return t, nil
}

// paramSpecs enumerates the continuous parameters of the analysis.
func paramSpecs(ev *performability.Evaluator, a *perf.Analysis, cfg perf.Config) []paramSpec {
	env := a.Env()
	var specs []paramSpec
	for x := 0; x < env.K(); x++ {
		st := env.Type(x)
		mut := func(x int, set func(*spec.ServerType, float64), shareStates bool) func(context.Context, float64) (point, error) {
			return envEval(ev, a, cfg, x, set, shareStates)
		}
		specs = append(specs,
			paramSpec{FailureRate, x, st.Name, st.FailureRate,
				mut(x, func(s *spec.ServerType, v float64) { s.FailureRate = v }, true)},
			paramSpec{RepairRate, x, st.Name, st.RepairRate,
				mut(x, func(s *spec.ServerType, v float64) { s.RepairRate = v }, true)},
			paramSpec{MeanService, x, st.Name, st.MeanService,
				mut(x, func(s *spec.ServerType, v float64) { s.MeanService = v }, false)},
			paramSpec{ServiceSecondMoment, x, st.Name, st.ServiceSecondMoment,
				mut(x, func(s *spec.ServerType, v float64) { s.ServiceSecondMoment = v }, false)},
		)
	}
	for t, m := range a.Models() {
		specs = append(specs, paramSpec{ArrivalRate, t, m.Workflow.Name, m.Workflow.ArrivalRate,
			arrivalEval(ev, a, cfg, t)})
	}
	return specs
}

// envEval evaluates the metrics with one server-type field set to θ.
// The perturbed environment revalidates, so infeasible values (negative
// rates, a second moment below the squared mean) surface as errors the
// adaptive stepping treats as a missing side.
func envEval(ev *performability.Evaluator, a *perf.Analysis, cfg perf.Config, x int, set func(*spec.ServerType, float64), shareStates bool) func(context.Context, float64) (point, error) {
	return func(ctx context.Context, theta float64) (point, error) {
		types := a.Env().Types()
		set(&types[x], theta)
		env2, err := spec.NewEnvironment(types...)
		if err != nil {
			return point{}, err
		}
		a2, err := perf.NewAnalysis(env2, a.Models())
		if err != nil {
			return point{}, err
		}
		ev2, err := ev.Derive(a2, shareStates)
		if err != nil {
			return point{}, err
		}
		return evalPoint(ctx, ev2, a2, cfg)
	}
}

// arrivalEval evaluates the metrics with workflow t's arrival rate set
// to θ. The model is shallow-copied around a cloned workflow — the
// chain, load matrix, and expected requests do not depend on ξ_t.
func arrivalEval(ev *performability.Evaluator, a *perf.Analysis, cfg perf.Config, t int) func(context.Context, float64) (point, error) {
	return func(ctx context.Context, theta float64) (point, error) {
		if theta < 0 {
			return point{}, fmt.Errorf("sensitivity: negative arrival rate %v", theta)
		}
		models := append([]*spec.Model(nil), a.Models()...)
		m2 := *models[t]
		w2 := m2.Workflow.Clone()
		w2.ArrivalRate = theta
		m2.Workflow = w2
		models[t] = &m2
		a2, err := perf.NewAnalysis(a.Env(), models)
		if err != nil {
			return point{}, err
		}
		ev2, err := ev.Derive(a2, false)
		if err != nil {
			return point{}, err
		}
		return evalPoint(ctx, ev2, a2, cfg)
	}
}

// evalPoint runs one evaluation and reduces it to the three metrics.
func evalPoint(ctx context.Context, ev *performability.Evaluator, a *perf.Analysis, cfg perf.Config) (point, error) {
	res, err := ev.EvaluateContext(ctx, cfg, 1)
	if err != nil {
		return point{}, err
	}
	p := point{
		maxWaiting:     res.MaxWaiting(),
		unavailability: 1 - res.Availability,
		delays:         make([]float64, len(a.Models())),
	}
	for i := range a.Models() {
		r := a.WorkflowRequests(i)
		var d float64
		for x := range r {
			d += r[x] * res.Waiting[x]
		}
		p.delays[i] = d
	}
	return p, nil
}

// continuousEntry computes one central-difference entry with adaptive
// stepping: shrink the step (÷4, up to 3 times) while neither side is
// evaluable, fall back to a one-sided difference when exactly one is.
func continuousEntry(ctx context.Context, ps paramSpec, base point, opts Options) Entry {
	e := Entry{Kind: ps.kind, Index: ps.index, Target: ps.target, Value: ps.value, Method: "failed"}
	h := opts.RelStep * math.Abs(ps.value)
	if h == 0 {
		h = opts.RelStep
	}
	for try := 0; try < 4; try++ {
		if ctx.Err() != nil {
			return e
		}
		plus, errP := ps.eval(ctx, ps.value+h)
		var minus point
		errM := fmt.Errorf("sensitivity: negative parameter")
		if ps.value-h >= 0 {
			minus, errM = ps.eval(ctx, ps.value-h)
		}
		switch {
		case errP == nil && errM == nil:
			e.Method, e.Step = "central", h
			e.DMaxWaiting, e.DUnavailability, e.DWorkflowDelays = diff(plus, minus, 2*h)
			return e
		case errP == nil:
			e.Method, e.Step = "forward", h
			e.DMaxWaiting, e.DUnavailability, e.DWorkflowDelays = diff(plus, base, h)
			return e
		case errM == nil:
			e.Method, e.Step = "backward", h
			e.DMaxWaiting, e.DUnavailability, e.DWorkflowDelays = diff(base, minus, h)
			return e
		}
		h /= 4
	}
	return e
}

// replicaEntry computes the discrete ±1 difference for Y_x.
func replicaEntry(ctx context.Context, ev *performability.Evaluator, a *perf.Analysis, cfg perf.Config, x int, base point) Entry {
	y := cfg.Replicas[x]
	e := Entry{Kind: Replicas, Index: x, Target: a.Env().Type(x).Name, Value: float64(y), Method: "failed", Step: 1}
	up := cfg.Clone()
	up.Replicas[x] = y + 1
	plus, errP := evalPoint(ctx, ev, a, up)
	if errP != nil {
		return e
	}
	if y > 1 {
		down := cfg.Clone()
		down.Replicas[x] = y - 1
		if minus, errM := evalPoint(ctx, ev, a, down); errM == nil {
			e.Method = "central_discrete"
			e.DMaxWaiting, e.DUnavailability, e.DWorkflowDelays = diff(plus, minus, 2)
			return e
		}
	}
	e.Method = "forward_discrete"
	e.DMaxWaiting, e.DUnavailability, e.DWorkflowDelays = diff(plus, base, 1)
	return e
}

// diff is the per-metric difference quotient (hi − lo)/denom.
func diff(hi, lo point, denom float64) (dW, dU float64, dD []float64) {
	dW = (hi.maxWaiting - lo.maxWaiting) / denom
	dU = (hi.unavailability - lo.unavailability) / denom
	dD = make([]float64, len(hi.delays))
	for i := range hi.delays {
		dD[i] = (hi.delays[i] - lo.delays[i]) / denom
	}
	return dW, dU, dD
}

// finishEntry derives elasticities, rank, and attribution from the raw
// derivatives.
func finishEntry(e *Entry, base point) {
	e.WaitingElasticity = elasticity(e.Value, e.DMaxWaiting, base.maxWaiting)
	e.UnavailabilityElasticity = elasticity(e.Value, e.DUnavailability, base.unavailability)
	for _, v := range []float64{math.Abs(e.WaitingElasticity), math.Abs(e.UnavailabilityElasticity)} {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > e.Rank {
			e.Rank = v
		}
	}
	e.Attribution = attribution(*e)
}

// elasticity is (θ/metric)·∂metric/∂θ, NaN when undefined.
func elasticity(value, deriv, metric float64) float64 {
	if metric == 0 || math.IsInf(metric, 0) {
		return math.NaN()
	}
	return value / metric * deriv
}

// describe names a parameter for humans: `server type 2 ("app")'s
// service second moment`.
func describe(e Entry) string {
	noun := map[Kind]string{
		FailureRate:         "failure rate",
		RepairRate:          "repair rate",
		MeanService:         "mean service time",
		ServiceSecondMoment: "service second moment",
		ArrivalRate:         "arrival rate",
		Replicas:            "replica count",
	}[e.Kind]
	if e.Kind == ArrivalRate {
		return fmt.Sprintf("workflow %q's %s", e.Target, noun)
	}
	return fmt.Sprintf("server type %d (%q)'s %s", e.Index, e.Target, noun)
}

// attribution renders one entry's dominant effect.
func attribution(e Entry) string {
	if e.Method == "failed" {
		return fmt.Sprintf("%s could not be perturbed within the model's validity bounds", describe(e))
	}
	we, ue := e.WaitingElasticity, e.UnavailabilityElasticity
	if math.IsNaN(we) && math.IsNaN(ue) {
		return fmt.Sprintf("%s has no measurable effect on the metrics", describe(e))
	}
	if math.IsNaN(ue) || math.Abs(we) >= math.Abs(ue) {
		return fmt.Sprintf("a 1%% increase in %s changes the maximum waiting time by %+.3g%%", describe(e), we)
	}
	return fmt.Sprintf("a 1%% increase in %s changes the unavailability by %+.3g%%", describe(e), ue)
}

// summarize names the dominant parameter for each metric.
func summarize(entries []Entry) string {
	var topW, topU *Entry
	for i := range entries {
		e := &entries[i]
		if v := math.Abs(e.WaitingElasticity); !math.IsNaN(v) && !math.IsInf(v, 0) {
			if topW == nil || v > math.Abs(topW.WaitingElasticity) {
				topW = e
			}
		}
		if v := math.Abs(e.UnavailabilityElasticity); !math.IsNaN(v) && !math.IsInf(v, 0) {
			if topU == nil || v > math.Abs(topU.UnavailabilityElasticity) {
				topU = e
			}
		}
	}
	var parts []string
	if topW != nil {
		parts = append(parts, fmt.Sprintf("waiting time is dominated by %s (elasticity %+.3g)",
			describe(*topW), topW.WaitingElasticity))
	}
	if topU != nil {
		parts = append(parts, fmt.Sprintf("unavailability is dominated by %s (elasticity %+.3g)",
			describe(*topU), topU.UnavailabilityElasticity))
	}
	if len(parts) == 0 {
		return "no parameter has a measurable effect on the metrics"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "; " + p
	}
	return out
}
