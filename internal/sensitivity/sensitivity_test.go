package sensitivity

import (
	"context"
	"math"
	"sync"
	"testing"

	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// testAnalysis mirrors the Section 5.2 example used across the config
// tests: three server types with monthly/weekly/daily failures and a
// single workflow whose activity loads all three.
func testAnalysis(t *testing.T, xi float64) *perf.Analysis {
	t.Helper()
	b, b2 := spec.ExpServiceMoments(0.002)
	mk := func(name string, kind spec.ServerKind, mttf float64) spec.ServerType {
		return spec.ServerType{
			Name: name, Kind: kind,
			MeanService: b, ServiceSecondMoment: b2,
			FailureRate: 1 / mttf, RepairRate: 1.0 / 10,
		}
	}
	env, err := spec.NewEnvironment(
		mk("orb", spec.Communication, 43200),
		mk("eng", spec.Engine, 10080),
		mk("app", spec.Application, 1440),
	)
	if err != nil {
		t.Fatal(err)
	}
	chart := statechart.NewBuilder("wf").
		Initial("init").
		Activity("A", "act").
		Final("done").
		Transition("init", "A", 1).
		Transition("A", "done", 1).
		MustBuild()
	w := &spec.Workflow{
		Name:  "wf",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"act": {Name: "act", MeanDuration: 5,
				Load: map[string]float64{"orb": 2, "eng": 3, "app": 3}},
		},
		ArrivalRate: xi,
	}
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testEvaluator(t *testing.T, a *perf.Analysis) *performability.Evaluator {
	t.Helper()
	ev, err := performability.NewEvaluator(a, performability.Options{Policy: performability.ExcludeDown})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func testConfig() perf.Config {
	return perf.Config{Replicas: []int{2, 2, 3}}
}

func computeTable(t *testing.T, xi float64) *Table {
	t.Helper()
	a := testAnalysis(t, xi)
	ev := testEvaluator(t, a)
	tab, err := Compute(context.Background(), ev, testConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableCoversEveryParameter(t *testing.T) {
	tab := computeTable(t, 1)
	// 3 types × 4 continuous kinds + 1 arrival + 3 replica entries.
	if want := 3*4 + 1 + 3; len(tab.Entries) != want {
		t.Fatalf("table has %d entries, want %d", len(tab.Entries), want)
	}
	seen := map[Kind]int{}
	for _, e := range tab.Entries {
		seen[e.Kind]++
		if e.Method == "failed" {
			t.Errorf("entry %s/%s not evaluable", e.Kind, e.Target)
		}
		if e.Attribution == "" {
			t.Errorf("entry %s/%s has no attribution", e.Kind, e.Target)
		}
		if len(e.DWorkflowDelays) != 1 {
			t.Errorf("entry %s/%s has %d delay derivatives, want 1", e.Kind, e.Target, len(e.DWorkflowDelays))
		}
	}
	for kind, want := range map[Kind]int{
		FailureRate: 3, RepairRate: 3, MeanService: 3,
		ServiceSecondMoment: 3, ArrivalRate: 1, Replicas: 3,
	} {
		if seen[kind] != want {
			t.Errorf("%d %s entries, want %d", seen[kind], kind, want)
		}
	}
	for i := 1; i < len(tab.Entries); i++ {
		if tab.Entries[i].Rank > tab.Entries[i-1].Rank {
			t.Fatal("entries not ranked descending")
		}
	}
	if tab.Summary == "" {
		t.Error("empty summary")
	}
}

// The physics must come out with the right signs: more failures or
// slower service hurt, faster repair helps, and an extra replica never
// hurts either metric.
func TestDerivativeSigns(t *testing.T) {
	tab := computeTable(t, 1)
	for _, e := range tab.Entries {
		switch e.Kind {
		case FailureRate:
			if e.DUnavailability <= 0 {
				t.Errorf("∂unavail/∂λ(%s) = %v, want > 0", e.Target, e.DUnavailability)
			}
		case RepairRate:
			if e.DUnavailability >= 0 {
				t.Errorf("∂unavail/∂μ(%s) = %v, want < 0", e.Target, e.DUnavailability)
			}
		case MeanService, ServiceSecondMoment, ArrivalRate:
			// Max waiting is attained at one type, so another type's
			// service perturbation can leave it flat — the workflow
			// delay sums every type and must strictly increase.
			if e.DWorkflowDelays[0] <= 0 {
				t.Errorf("∂delay/∂%s(%s) = %v, want > 0", e.Kind, e.Target, e.DWorkflowDelays[0])
			}
			if e.DMaxWaiting < 0 {
				t.Errorf("∂W/∂%s(%s) = %v, want ≥ 0", e.Kind, e.Target, e.DMaxWaiting)
			}
		case Replicas:
			if e.DMaxWaiting > 1e-12 {
				t.Errorf("∂W/∂Y(%s) = %v, want ≤ 0", e.Target, e.DMaxWaiting)
			}
			if e.DUnavailability > 1e-15 {
				t.Errorf("∂unavail/∂Y(%s) = %v, want ≤ 0", e.Target, e.DUnavailability)
			}
		}
	}
}

// The warm-cache path must be invisible in the numbers: recomputing one
// derivative by hand with completely fresh evaluators (no shared
// caches) has to agree with the table.
func TestTableMatchesColdRecomputation(t *testing.T) {
	a := testAnalysis(t, 1)
	ev := testEvaluator(t, a)
	cfg := testConfig()
	tab, err := Compute(context.Background(), ev, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}

	freshPoint := func(types []spec.ServerType) (maxW, unav float64) {
		t.Helper()
		env2, err := spec.NewEnvironment(types...)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := perf.NewAnalysis(env2, a.Models())
		if err != nil {
			t.Fatal(err)
		}
		ev2 := testEvaluator(t, a2)
		res, err := ev2.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxWaiting(), 1 - res.Availability
	}

	check := func(kind Kind, x int, set func(*spec.ServerType, float64), get func(spec.ServerType) float64) {
		t.Helper()
		var entry *Entry
		for i := range tab.Entries {
			if tab.Entries[i].Kind == kind && tab.Entries[i].Index == x {
				entry = &tab.Entries[i]
				break
			}
		}
		if entry == nil {
			t.Fatalf("no %s entry for type %d", kind, x)
		}
		if entry.Method != "central" {
			t.Fatalf("%s/%d method = %s, want central", kind, x, entry.Method)
		}
		v := get(a.Env().Type(x))
		h := entry.Step
		up := a.Env().Types()
		set(&up[x], v+h)
		down := a.Env().Types()
		set(&down[x], v-h)
		wP, uP := freshPoint(up)
		wM, uM := freshPoint(down)
		wantW, wantU := (wP-wM)/(2*h), (uP-uM)/(2*h)
		if !closeRel(entry.DMaxWaiting, wantW, 1e-9) {
			t.Errorf("%s/%d ∂W = %v, cold recompute %v", kind, x, entry.DMaxWaiting, wantW)
		}
		if !closeRel(entry.DUnavailability, wantU, 1e-9) {
			t.Errorf("%s/%d ∂unavail = %v, cold recompute %v", kind, x, entry.DUnavailability, wantU)
		}
	}

	check(FailureRate, 2,
		func(s *spec.ServerType, v float64) { s.FailureRate = v },
		func(s spec.ServerType) float64 { return s.FailureRate })
	check(ServiceSecondMoment, 1,
		func(s *spec.ServerType, v float64) { s.ServiceSecondMoment = v },
		func(s spec.ServerType) float64 { return s.ServiceSecondMoment })
	check(MeanService, 0,
		func(s *spec.ServerType, v float64) { s.MeanService = v },
		func(s spec.ServerType) float64 { return s.MeanService })
}

func closeRel(got, want, tol float64) bool {
	if got == want {
		return true
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return math.Abs(got-want) <= tol*scale
}

// Derived evaluators must share caches soundly: a failure-rate
// perturbation (states shared) and a service perturbation (states not
// shared) both agree with fresh evaluators, and the base evaluator's
// cache keeps serving the original model correctly afterwards.
func TestDeriveSharesCachesSoundly(t *testing.T) {
	a := testAnalysis(t, 1)
	ev := testEvaluator(t, a)
	cfg := testConfig()
	baseRes, err := ev.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	perturb := func(set func(*spec.ServerType)) *perf.Analysis {
		types := a.Env().Types()
		set(&types[0])
		env2, err := spec.NewEnvironment(types...)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := perf.NewAnalysis(env2, a.Models())
		if err != nil {
			t.Fatal(err)
		}
		return a2
	}

	// Failure-rate change: shared states are sound, and the derived
	// evaluation must hit the warm state cache rather than re-solving.
	aFail := perturb(func(s *spec.ServerType) { s.FailureRate *= 2 })
	dFail, err := ev.Derive(aFail, true)
	if err != nil {
		t.Fatal(err)
	}
	missesBefore := dFail.Stats().Misses
	gotFail, err := dFail.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dFail.Stats().Misses != missesBefore {
		t.Errorf("shared-state derive re-solved %d states", dFail.Stats().Misses-missesBefore)
	}
	wantFail, err := testEvaluator(t, aFail).Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotFail.Availability != wantFail.Availability || !closeRel(gotFail.MaxWaiting(), wantFail.MaxWaiting(), 0) {
		t.Errorf("shared-state derive: got A=%v W=%v, fresh A=%v W=%v",
			gotFail.Availability, gotFail.MaxWaiting(), wantFail.Availability, wantFail.MaxWaiting())
	}

	// Service change: states must NOT be shared; results still agree
	// with a fresh evaluator.
	aSvc := perturb(func(s *spec.ServerType) { s.MeanService *= 2; s.ServiceSecondMoment *= 4 })
	dSvc, err := ev.Derive(aSvc, false)
	if err != nil {
		t.Fatal(err)
	}
	gotSvc, err := dSvc.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSvc, err := testEvaluator(t, aSvc).Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !closeRel(gotSvc.MaxWaiting(), wantSvc.MaxWaiting(), 0) {
		t.Errorf("unshared derive: W=%v, fresh W=%v", gotSvc.MaxWaiting(), wantSvc.MaxWaiting())
	}

	// The base evaluator still answers the original model unchanged.
	again, err := ev.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Availability != baseRes.Availability || !closeRel(again.MaxWaiting(), baseRes.MaxWaiting(), 0) {
		t.Error("base evaluator results changed after derived evaluations")
	}
}

// Concurrent table computations over one shared evaluator must be
// race-clean and deterministic (the CI runs this under -race).
func TestConcurrentComputeIsConsistent(t *testing.T) {
	a := testAnalysis(t, 1)
	ev := testEvaluator(t, a)
	cfg := testConfig()
	const n = 4
	tables := make([]*Table, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tab, err := Compute(context.Background(), ev, cfg, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tab
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if tables[i] == nil || tables[0] == nil {
			t.Fatal("missing table")
		}
		for j := range tables[0].Entries {
			a, b := tables[0].Entries[j], tables[i].Entries[j]
			if a.Kind != b.Kind || a.Index != b.Index || a.DMaxWaiting != b.DMaxWaiting || a.DUnavailability != b.DUnavailability {
				t.Fatalf("table %d entry %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestComputeHonorsCancellation(t *testing.T) {
	a := testAnalysis(t, 1)
	ev := testEvaluator(t, a)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compute(ctx, ev, testConfig(), Options{}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestComputeRejectsArityMismatch(t *testing.T) {
	a := testAnalysis(t, 1)
	ev := testEvaluator(t, a)
	if _, err := Compute(context.Background(), ev, perf.Config{Replicas: []int{1, 2}}, Options{}); err == nil {
		t.Fatal("expected arity error")
	}
}
