package sim

import (
	"math"
	"reflect"
	"testing"

	"performa/internal/audit"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// forkJoinWorkflow builds init → AND(k single-activity branches, each
// exponential with mean d) → final, with a small request load so the
// dispatch machinery is exercised too.
func forkJoinWorkflow(t *testing.T, env *spec.Environment, k int, d, arrival float64) (*spec.Workflow, *spec.Model) {
	t.Helper()
	par := &statechart.State{Name: "par"}
	for i := 0; i < k; i++ {
		sub := &statechart.Chart{
			Name: "branch" + string(rune('a'+i)),
			States: map[string]*statechart.State{
				"init": {Name: "init"},
				"work": {Name: "work", Activity: "act"},
				"fin":  {Name: "fin"},
			},
			Initial: "init",
			Final:   "fin",
			Transitions: []*statechart.Transition{
				{From: "init", To: "work", Prob: 1},
				{From: "work", To: "fin", Prob: 1},
			},
		}
		par.Subcharts = append(par.Subcharts, sub)
	}
	chart := &statechart.Chart{
		Name: "forkjoin",
		States: map[string]*statechart.State{
			"init": {Name: "init"}, "par": par, "final": {Name: "final"},
		},
		Initial: "init",
		Final:   "final",
		Transitions: []*statechart.Transition{
			{From: "init", To: "par", Prob: 1},
			{From: "par", To: "final", Prob: 1},
		},
	}
	w := &spec.Workflow{
		Name:  "forkjoin",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"act": {Name: "act", MeanDuration: d, Load: map[string]float64{"srv": 0.5}},
		},
		ArrivalRate: arrival,
	}
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

// TestTrueConcurrencyEMaxBias: with two i.i.d. exponential branches of
// mean d, the true-concurrency turnaround must match E[max] = 3d/2 and
// the collapsed-mode turnaround the collapse's max-of-means d — the
// structural blindness the -net crossval route exists to break.
func TestTrueConcurrencyEMaxBias(t *testing.T) {
	env := oneTypeEnv(t, 0.05, 0, 0)
	const d = 5.0
	_, m := forkJoinWorkflow(t, env, 2, d, 0.02)
	base := Params{
		Env:      env,
		Models:   []*spec.Model{m},
		Replicas: []int{2},
		Seed:     17,
		Horizon:  200000,
		Warmup:   2000,
	}

	conc := base
	conc.TrueConcurrency = true
	rc, err := Run(conc)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := 1.5 * d
	got := rc.Turnaround[0]
	if got.N < 1000 {
		t.Fatalf("too few completions: %d", got.N)
	}
	if math.Abs(got.Mean-wantMax) > 4*got.StdErr+0.01*wantMax {
		t.Fatalf("true-concurrency turnaround %v ± %v, want E[max] = %v", got.Mean, got.StdErr, wantMax)
	}

	rcol, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	col := rcol.Turnaround[0]
	if math.Abs(col.Mean-d) > 4*col.StdErr+0.01*d {
		t.Fatalf("collapsed turnaround %v ± %v, want max-of-means = %v", col.Mean, col.StdErr, d)
	}
	if !(col.Mean < got.Mean) {
		t.Fatalf("collapsed mean %v should sit below the true-concurrency mean %v", col.Mean, got.Mean)
	}
}

// TestTrueConcurrencyDeterminism: identical seeds reproduce the full
// result bit for bit, including the fork/join token interleavings.
func TestTrueConcurrencyDeterminism(t *testing.T) {
	env := oneTypeEnv(t, 0.05, 0, 0)
	_, m := forkJoinWorkflow(t, env, 3, 2.0, 0.05)
	p := Params{
		Env:             env,
		Models:          []*spec.Model{m},
		Replicas:        []int{2},
		Seed:            99,
		Horizon:         20000,
		Warmup:          500,
		TrueConcurrency: true,
	}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with the same seed disagree:\n%+v\nvs\n%+v", a, b)
	}
	c, err := Run(Params{
		Env: p.Env, Models: p.Models, Replicas: p.Replicas,
		Seed: 100, Horizon: p.Horizon, Warmup: p.Warmup, TrueConcurrency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Turnaround, c.Turnaround) {
		t.Fatal("different seeds produced identical turnaround tallies")
	}
}

// TestTrueConcurrencyTrail: the concurrent walker emits the same trail
// record shape as the collapsed mode — instance life cycles bracketing
// top-level state entries and activity spans — so calibration consumers
// keep working.
func TestTrueConcurrencyTrail(t *testing.T) {
	env := oneTypeEnv(t, 0.05, 0, 0)
	_, m := forkJoinWorkflow(t, env, 2, 1.0, 0.05)
	trail := audit.NewTrail()
	p := Params{
		Env:             env,
		Models:          []*spec.Model{m},
		Replicas:        []int{1},
		Seed:            7,
		Horizon:         5000,
		TrueConcurrency: true,
		Trail:           trail,
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var started, completed, entered, acts uint64
	for _, rec := range trail.Records() {
		switch rec.Kind {
		case audit.InstanceStarted:
			started++
		case audit.InstanceCompleted:
			completed++
		case audit.StateEntered:
			if rec.State == "par" {
				entered++
			}
			if rec.State == "work" {
				t.Fatal("nested subchart state leaked into the top-level trail")
			}
		case audit.ActivityStarted:
			acts++
		}
	}
	if started == 0 || completed == 0 {
		t.Fatalf("trail has %d starts, %d completions", started, completed)
	}
	if completed != res.Completed[0] {
		t.Fatalf("trail completions %d != result completions %d", completed, res.Completed[0])
	}
	if entered < completed {
		t.Fatalf("only %d 'par' entries for %d completions", entered, completed)
	}
	// The AND state invokes no top-level activity, and nested activity
	// spans are not recorded (matching the collapsed mode's view).
	if acts != 0 {
		t.Fatalf("expected no top-level activity spans, got %d", acts)
	}
}
