package sim

import (
	"math"
	"reflect"
	"testing"

	"performa/internal/audit"
	"performa/internal/calibrate"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// branchModel returns a workflow whose initial activity branches to one
// of two activities with the given probability.
func branchModel(t *testing.T, env *spec.Environment, pLeft, xi float64) *spec.Model {
	t.Helper()
	chart := statechart.NewBuilder("wf").
		Initial("init").
		Activity("Check", "check").
		Activity("Left", "left").
		Activity("Right", "right").
		Final("done").
		Transition("init", "Check", 1).
		Transition("Check", "Left", pLeft).
		Transition("Check", "Right", 1-pLeft).
		Transition("Left", "done", 1).
		Transition("Right", "done", 1).
		MustBuild()
	load := map[string]float64{"srv": 1}
	w := &spec.Workflow{
		Name:  "wf",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"check": {Name: "check", MeanDuration: 0.5, Load: load},
			"left":  {Name: "left", MeanDuration: 0.5, Load: load},
			"right": {Name: "right", MeanDuration: 0.5, Load: load},
		},
		ArrivalRate: xi,
	}
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrailRecordsInstanceLifecycles(t *testing.T) {
	env := oneTypeEnv(t, 0.05, 0, 0)
	m := simpleModel(t, env, 1, 1, 2)
	trail := audit.NewTrail()
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Horizon: 200, Seed: 3, Trail: trail,
	})
	if err != nil {
		t.Fatal(err)
	}
	if trail.Len() == 0 {
		t.Fatal("empty trail")
	}
	starts := trail.Filter(audit.InstanceStarted)
	completes := trail.Filter(audit.InstanceCompleted)
	if len(starts) == 0 || len(completes) == 0 {
		t.Fatalf("starts=%d completes=%d, want both > 0", len(starts), len(completes))
	}
	if len(completes) > len(starts) {
		t.Errorf("more completions (%d) than starts (%d)", len(completes), len(starts))
	}
	// The sim counts only post-warmup instances; the trail records all
	// of them, so it must have at least as many.
	if uint64(len(starts)) < res.Started[0] {
		t.Errorf("trail has %d starts, sim counted %d", len(starts), res.Started[0])
	}
	// Every service request carries a positive service time and a
	// nonnegative wait on the right server type.
	for _, r := range trail.Filter(audit.ServiceRequest) {
		if r.ServerType != "srv" || !(r.Service > 0) || r.Waiting < 0 {
			t.Fatalf("bad service record: %+v", r)
		}
	}
	// The trail must calibrate cleanly and reproduce the chart's
	// control flow: "A" is entered once per started instance, and every
	// observed departure from "A" goes to the final state.
	est, err := calibrate.FromTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.TransitionCounts[calibrate.TransitionKey{Chart: "wf", From: "A", To: "done"}]; got == 0 {
		t.Error("no A→done transitions observed")
	}
	dep := est.Departures[[2]string{"wf", "A"}]
	if p, ok := est.TransitionProb("wf", "A", "done", 1, 0); !ok || p != 1 {
		t.Errorf("P(A→done) = %v (ok=%v), want 1 from %d departures", p, ok, dep)
	}
	if est.Starts["wf"] != uint64(len(starts)) {
		t.Errorf("calibrated starts %d != trail starts %d", est.Starts["wf"], len(starts))
	}
	// Activity spans were recorded and have plausible durations.
	mp := est.ActivityDurations["act"]
	if mp == nil || mp.N == 0 || !(mp.Mean > 0) {
		t.Fatalf("no usable activity duration estimates: %+v", mp)
	}
}

func TestTrailBranchProbabilitiesMatchSpec(t *testing.T) {
	env := oneTypeEnv(t, 0.01, 0, 0)
	m := branchModel(t, env, 0.7, 2)
	trail := audit.NewTrail()
	if _, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Horizon: 2000, Seed: 11, Trail: trail,
	}); err != nil {
		t.Fatal(err)
	}
	est, err := calibrate.FromTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	pLeft, ok := est.TransitionProb("wf", "Check", "Left", 2, 0)
	if !ok {
		t.Fatal("no departures from Check observed")
	}
	if math.Abs(pLeft-0.7) > 0.05 {
		t.Errorf("estimated P(Check→Left) = %v, want ≈ 0.7", pLeft)
	}
	// The pseudo final state is synthesized, so the closing transitions
	// are observable too.
	if p, ok := est.TransitionProb("wf", "Left", "done", 1, 0); !ok || p != 1 {
		t.Errorf("P(Left→done) = %v (ok=%v), want 1", p, ok)
	}
}

// TestTrailRecordingPreservesDeterminism pins the no-perturbation
// contract: enabling the trail must not change the simulated run.
func TestTrailRecordingPreservesDeterminism(t *testing.T) {
	env := oneTypeEnv(t, 0.05, 0, 0)
	base := Params{
		Env: env, Models: []*spec.Model{simpleModel(t, env, 1, 1, 2)},
		Replicas: []int{2}, Horizon: 100, Seed: 9,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withTrail := base
	withTrail.Trail = audit.NewTrail()
	recorded, err := Run(withTrail)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, recorded) {
		t.Error("results differ with trail recording enabled")
	}
}
