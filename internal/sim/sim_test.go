package sim

import (
	"math"
	"reflect"
	"testing"

	"performa/internal/avail"
	"performa/internal/dist"
	"performa/internal/perf"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// oneTypeEnv returns an environment with a single server type of mean
// service time b (exponential) and the given failure/repair rates.
func oneTypeEnv(t *testing.T, b, lambda, mu float64) *spec.Environment {
	t.Helper()
	m, m2 := spec.ExpServiceMoments(b)
	env, err := spec.NewEnvironment(spec.ServerType{
		Name: "srv", Kind: spec.Engine,
		MeanService: m, ServiceSecondMoment: m2,
		FailureRate: lambda, RepairRate: mu,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// simpleModel returns a one-activity workflow sending `load` requests to
// "srv" per instance, residence time h, arrival rate xi.
func simpleModel(t *testing.T, env *spec.Environment, load, h, xi float64) *spec.Model {
	t.Helper()
	chart := statechart.NewBuilder("wf").
		Initial("init").
		Activity("A", "act").
		Final("done").
		Transition("init", "A", 1).
		Transition("A", "done", 1).
		MustBuild()
	w := &spec.Workflow{
		Name:  "wf",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"act": {Name: "act", MeanDuration: h, Load: map[string]float64{"srv": load}},
		},
		ArrivalRate: xi,
	}
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamValidation(t *testing.T) {
	env := oneTypeEnv(t, 1, 0, 0)
	m := simpleModel(t, env, 1, 1, 0.5)
	good := Params{Env: env, Models: []*spec.Model{m}, Replicas: []int{1}, Horizon: 10}
	cases := []Params{
		{},
		{Env: env, Horizon: 10},
		{Env: env, Models: good.Models, Replicas: []int{1, 2}, Horizon: 10},
		{Env: env, Models: good.Models, Replicas: []int{1}},
		{Env: env, Models: good.Models, Replicas: []int{1}, Horizon: 10, Warmup: 20},
		{Env: env, Models: []*spec.Model{{}}, Replicas: []int{1}, Horizon: 10},
	}
	for i, p := range cases {
		if _, err := Run(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestZeroReplicaWithLoadRejected(t *testing.T) {
	env := oneTypeEnv(t, 1, 0, 0)
	m := simpleModel(t, env, 1, 1, 0.5)
	_, err := Run(Params{Env: env, Models: []*spec.Model{m}, Replicas: []int{0}, Horizon: 10})
	if err == nil {
		t.Error("zero replicas with load accepted")
	}
}

func TestMM1WaitingMatchesAnalytic(t *testing.T) {
	// One request per instance, b = 1, ξ = 0.5 → M/M/1 at ρ = 0.5:
	// w = ρ b / (1 - ρ) = 1.
	env := oneTypeEnv(t, 1, 0, 0)
	m := simpleModel(t, env, 1, 1, 0.5)
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1},
		Seed: 42, Horizon: 60000, Warmup: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Waiting[0].N < 10000 {
		t.Fatalf("only %d observations", res.Waiting[0].N)
	}
	if got := res.Waiting[0].Mean; math.Abs(got-1) > 0.1 {
		t.Errorf("waiting = %v, want ≈1 (M/M/1 at ρ=0.5)", got)
	}
	if got := res.Utilization[0]; math.Abs(got-0.5) > 0.03 {
		t.Errorf("utilization = %v, want ≈0.5", got)
	}
}

func TestWaitingMatchesPerfModel(t *testing.T) {
	// Cross-validation with the analytic pipeline in the regime the
	// M/G/1 model describes exactly: one request per instance (so the
	// aggregate request stream is Poisson) with random dispatch (random
	// splitting of a Poisson stream stays Poisson per replica).
	env := oneTypeEnv(t, 0.5, 0, 0)
	m := simpleModel(t, env, 1, 2, 1.2) // l = 1.2 req/u; Y=2 → ρ=0.3
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 7, Horizon: 80000, Warmup: 4000, Dispatch: Random,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Waiting[0].Mean, rep.Waiting[0]; math.Abs(got-want)/want > 0.1 {
		t.Errorf("simulated waiting %v vs analytic %v (>10%% off)", got, want)
	}
	if got, want := res.Utilization[0], rep.Utilization[0]; math.Abs(got-want) > 0.03 {
		t.Errorf("simulated utilization %v vs analytic %v", got, want)
	}
}

func TestBurstyInstancesExceedAnalyticWaiting(t *testing.T) {
	// With several requests per instance clustered within one residence
	// period, the aggregate arrival process is burstier than Poisson,
	// so the measured waiting must sit at or above the analytic value —
	// the analytic model is optimistic in exactly this regime, which
	// EXPERIMENTS.md documents.
	env := oneTypeEnv(t, 0.5, 0, 0)
	m := simpleModel(t, env, 3, 2, 0.4) // same l = 1.2 req/u, but bursty
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 7, Horizon: 80000, Warmup: 4000, Dispatch: Random,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Waiting[0].Mean < rep.Waiting[0]*0.95 {
		t.Errorf("bursty waiting %v below analytic %v; expected at/above",
			res.Waiting[0].Mean, rep.Waiting[0])
	}
}

func TestRoundRobinSmoothsArrivals(t *testing.T) {
	// Round-robin splitting regularizes per-server interarrivals, so
	// its waiting should not exceed random dispatch (same seed, same
	// Poisson input).
	env := oneTypeEnv(t, 0.5, 0, 0)
	m := simpleModel(t, env, 1, 2, 1.6) // ρ = 0.4 at Y=2
	base := Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 31, Horizon: 60000, Warmup: 3000,
	}
	rr, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.Dispatch = Random
	random, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Waiting[0].Mean > random.Waiting[0].Mean*1.05 {
		t.Errorf("round-robin waiting %v above random %v; regularization should help",
			rr.Waiting[0].Mean, random.Waiting[0].Mean)
	}
}

func TestColocationMatchesMergedQueueModel(t *testing.T) {
	// Two types on one computer (Section 4.4's generalized case): the
	// perf model merges their streams into one M/G/1 queue; the
	// simulator must reproduce the merged waiting time for both types.
	b1, b21 := spec.ExpServiceMoments(0.4)
	b2, b22 := spec.ExpServiceMoments(0.8)
	env, err := spec.NewEnvironment(
		spec.ServerType{Name: "t1", Kind: spec.Engine, MeanService: b1, ServiceSecondMoment: b21},
		spec.ServerType{Name: "t2", Kind: spec.Application, MeanService: b2, ServiceSecondMoment: b22},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two independent single-request workflows, one per type: their
	// superposition at the shared computer is Poisson, which is the
	// regime the merged M/G/1 model describes exactly.
	mk := func(name, target string, xi float64) *spec.Model {
		chart := statechart.NewBuilder(name).
			Initial("init").
			Activity("A", "act-"+name).
			Final("done").
			Transition("init", "A", 1).
			Transition("A", "done", 1).
			MustBuild()
		w := &spec.Workflow{
			Name:  name,
			Chart: chart,
			Profiles: map[string]spec.ActivityProfile{
				"act-" + name: {Name: "act-" + name, MeanDuration: 4,
					Load: map[string]float64{target: 1}},
			},
			ArrivalRate: xi,
		}
		m, err := spec.Build(w, env)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	models := []*spec.Model{mk("w1", "t1", 0.5), mk("w2", "t2", 0.5)}
	// Merged: ρ = 0.5·0.4 + 0.5·0.8 = 0.6 on the shared computer.
	a, err := perf.NewAnalysis(env, models)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{1, 1}, Colocated: [][]int{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: env, Models: models, Replicas: []int{1, 1},
		Colocated: [][]int{{0, 1}},
		Seed:      19, Horizon: 200000, Warmup: 10000, Dispatch: Random,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The model reports one shared waiting time for both types; both
	// per-type observations must reproduce it.
	for x := 0; x < 2; x++ {
		got, want := res.Waiting[x].Mean, rep.Waiting[x]
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("type %d: simulated %v vs merged model %v", x, got, want)
		}
	}
	// The shared computer's utilization ≈ 0.6 for both rows.
	for x := 0; x < 2; x++ {
		if math.Abs(res.Utilization[x]-0.6) > 0.04 {
			t.Errorf("type %d: utilization = %v, want ≈0.6", x, res.Utilization[x])
		}
	}
	// Both types' requests were actually served.
	if res.RequestsServed[0] == 0 || res.RequestsServed[1] == 0 {
		t.Error("per-type service counts missing under co-location")
	}
}

func TestColocationValidation(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 1.0/100, 1.0/10)
	m := simpleModel(t, env, 1, 1, 0.5)
	base := Params{Env: env, Models: []*spec.Model{m}, Replicas: []int{1}, Horizon: 10}
	bad := base
	bad.Colocated = [][]int{{0, 5}}
	if _, err := Run(bad); err == nil {
		t.Error("unknown type in group accepted")
	}
	dup := base
	dup.Colocated = [][]int{{0}, {0}}
	if _, err := Run(dup); err == nil {
		t.Error("duplicated type accepted")
	}
	withFail := base
	withFail.Colocated = [][]int{{0}}
	withFail.EnableFailures = true
	if _, err := Run(withFail); err == nil {
		t.Error("colocation with failures accepted")
	}
}

func TestWaitingTailMatchesMM1ClosedForm(t *testing.T) {
	// M/M/1 waiting-time distribution: P(W ≤ t) = 1 − ρ·e^{−(μ−λ)t}, so
	// the p95 is t* = ln(ρ/0.05)/(μ−λ) whenever ρ > 0.05.
	env := oneTypeEnv(t, 1, 0, 0)
	m := simpleModel(t, env, 1, 1, 0.5) // λ = 0.5, μ = 1, ρ = 0.5
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1},
		Seed: 42, Horizon: 120000, Warmup: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.5/0.05) / (1 - 0.5) // ≈ 4.605
	if got := res.WaitingP95[0]; math.Abs(got-want)/want > 0.1 {
		t.Errorf("p95 waiting = %v, want ≈%v (M/M/1 closed form)", got, want)
	}
	// Tail above mean: basic sanity.
	if res.WaitingP95[0] <= res.Waiting[0].Mean {
		t.Errorf("p95 %v not above mean %v", res.WaitingP95[0], res.Waiting[0].Mean)
	}
}

func TestSharedQueueMatchesMMC(t *testing.T) {
	// Shared-queue dispatch with exponential service is an M/M/c
	// system; the simulator must reproduce the Erlang-C waiting time.
	env := oneTypeEnv(t, 0.5, 0, 0)
	m := simpleModel(t, env, 1, 2, 2.4) // λ = 2.4, c = 2, ρ = 0.6
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 23, Horizon: 100000, Warmup: 5000, Dispatch: SharedQueue,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := perf.MMCWaiting(2, 2.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Waiting[0].Mean; math.Abs(got-want)/want > 0.1 {
		t.Errorf("shared-queue waiting %v vs Erlang-C %v", got, want)
	}
	// And pooling must beat random splitting under the same input.
	random, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 23, Horizon: 100000, Warmup: 5000, Dispatch: Random,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Waiting[0].Mean >= random.Waiting[0].Mean {
		t.Errorf("shared queue %v not below random %v",
			res.Waiting[0].Mean, random.Waiting[0].Mean)
	}
}

func TestSharedQueueSurvivesFailures(t *testing.T) {
	env := oneTypeEnv(t, 0.2, 1.0/100, 1.0/10)
	m := simpleModel(t, env, 1, 1, 2) // ρ = 0.2 at c=2
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		EnableFailures: true, Dispatch: SharedQueue,
		Seed: 4, Horizon: 60000, Warmup: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsServed[0] == 0 || res.Completed[0] == 0 {
		t.Fatal("nothing served under failures")
	}
	if res.Unavailability <= 0 {
		t.Errorf("unavailability = %v", res.Unavailability)
	}
}

func TestTurnaroundMatchesCTMC(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 0, 0)
	// Loopy workflow: work → check → (work 0.3 | done 0.7).
	chart := statechart.NewBuilder("loopy").
		Initial("init").
		Activity("work", "Work").
		Activity("check", "Check").
		Final("done").
		Transition("init", "work", 1).
		Transition("work", "check", 1).
		Transition("check", "work", 0.3).
		Transition("check", "done", 0.7).
		MustBuild()
	w := &spec.Workflow{
		Name:  "loopy",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"Work":  {Name: "Work", MeanDuration: 2, Load: map[string]float64{"srv": 1}},
			"Check": {Name: "Check", MeanDuration: 1, Load: map[string]float64{"srv": 1}},
		},
		ArrivalRate: 0.2,
	}
	m, err := spec.Build(w, env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1},
		Seed: 11, Horizon: 50000, Warmup: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Turnaround() // (2+1)/0.7
	if got := res.Turnaround[0].Mean; math.Abs(got-want)/want > 0.05 {
		t.Errorf("turnaround = %v, want ≈%v", got, want)
	}
	if res.Completed[0] == 0 || res.Started[0] == 0 {
		t.Error("no instances counted")
	}
}

func TestUnavailabilityMatchesAvailModel(t *testing.T) {
	// Fast failure/repair cycles so downtime mass gets sampled:
	// MTTF 50, MTTR 5, two replicas.
	env := oneTypeEnv(t, 0.1, 1.0/50, 1.0/5)
	m := simpleModel(t, env, 1, 1, 0.1)
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		EnableFailures: true,
		Seed:           3, Horizon: 300000, Warmup: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := avail.EvaluateProductForm([]avail.TypeParams{
		{Replicas: 2, FailureRate: 1.0 / 50, RepairRate: 1.0 / 5},
	}, avail.IndependentRepair, false)
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Unavailability // (5/55)² ≈ 0.00826
	if got := res.Unavailability; math.Abs(got-want)/want > 0.25 {
		t.Errorf("unavailability = %v, want ≈%v", got, want)
	}
}

func TestFailureShapeInsensitivity(t *testing.T) {
	// Renewal insensitivity: with per-server (independent) repair, the
	// steady-state unavailability depends only on MTTF and MTTR, not
	// on either distribution's shape. This is the empirical backing
	// for the availability model's product form (see
	// avail.TypeParams.RepairStages docs).
	env := oneTypeEnv(t, 0.1, 1.0/50, 1.0/5)
	m := simpleModel(t, env, 1, 1, 0.1)
	base := Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		EnableFailures: true,
		Seed:           3, Horizon: 400000, Warmup: 5000,
	}
	expRun, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	erl := base
	erl.FailureDists = []dist.Distribution{dist.ErlangFromMean(4, 50)}
	erl.RepairDists = []dist.Distribution{dist.ErlangFromMean(4, 5)}
	erlRun, err := Run(erl)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(5.0/55, 2) // analytic: (MTTR/(MTTF+MTTR))²
	for name, got := range map[string]float64{
		"exponential": expRun.Unavailability,
		"erlang-4":    erlRun.Unavailability,
	} {
		if math.Abs(got-want)/want > 0.3 {
			t.Errorf("%s shapes: unavailability %v, want ≈%v", name, got, want)
		}
	}
	// The two shapes agree with each other more tightly than with the
	// analytic value (shared seed discipline).
	if math.Abs(expRun.Unavailability-erlRun.Unavailability)/want > 0.35 {
		t.Errorf("shapes disagree: %v vs %v", expRun.Unavailability, erlRun.Unavailability)
	}
}

func TestDistributionOverrideValidation(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 0, 0)
	m := simpleModel(t, env, 1, 1, 0.5)
	bad := Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1}, Horizon: 10,
		FailureDists: []dist.Distribution{nil, nil},
	}
	if _, err := Run(bad); err == nil {
		t.Error("wrong FailureDists arity accepted")
	}
	bad.FailureDists = nil
	bad.RepairDists = []dist.Distribution{nil, nil}
	if _, err := Run(bad); err == nil {
		t.Error("wrong RepairDists arity accepted")
	}
}

func TestFailuresDegradeWaiting(t *testing.T) {
	env := oneTypeEnv(t, 0.5, 1.0/100, 1.0/10)
	m := simpleModel(t, env, 2, 1, 0.5) // ρ = 0.5 per replica at Y=2
	base := Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 21, Horizon: 60000, Warmup: 3000,
	}
	noFail, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withFail := base
	withFail.EnableFailures = true
	failed, err := Run(withFail)
	if err != nil {
		t.Fatal(err)
	}
	if failed.Waiting[0].Mean <= noFail.Waiting[0].Mean {
		t.Errorf("failures did not degrade waiting: %v vs %v",
			failed.Waiting[0].Mean, noFail.Waiting[0].Mean)
	}
	if noFail.Unavailability != 0 {
		t.Errorf("unavailability without failures = %v", noFail.Unavailability)
	}
	if failed.Unavailability <= 0 {
		t.Errorf("unavailability with failures = %v", failed.Unavailability)
	}
}

func TestRoundRobinBalancesLoad(t *testing.T) {
	env := oneTypeEnv(t, 0.2, 0, 0)
	m := simpleModel(t, env, 4, 1, 0.5)
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		Seed: 5, Horizon: 20000, Warmup: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With two replicas the observed utilization must be roughly the
	// per-type ρ/2 and all requests served.
	if res.RequestsServed[0] == 0 {
		t.Fatal("no requests served")
	}
	wantRho := 0.5 * 4 * 0.2 / 2 // ξ·load·b / Y = 0.2
	if math.Abs(res.Utilization[0]-wantRho) > 0.03 {
		t.Errorf("utilization = %v, want ≈%v", res.Utilization[0], wantRho)
	}
}

func TestPerWorkflowWaitingAttribution(t *testing.T) {
	// Two workflows with one request per instance each, hitting two
	// different server types at very different utilizations: the
	// per-workflow waiting summaries must match the per-type analytic
	// predictions, workflow by workflow.
	b1, b21 := spec.ExpServiceMoments(0.5)
	b2, b22 := spec.ExpServiceMoments(0.5)
	env, err := spec.NewEnvironment(
		spec.ServerType{Name: "hot", Kind: spec.Engine, MeanService: b1, ServiceSecondMoment: b21},
		spec.ServerType{Name: "cold", Kind: spec.Application, MeanService: b2, ServiceSecondMoment: b22},
	)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name, target string, xi float64) *spec.Model {
		chart := statechart.NewBuilder(name).
			Initial("init").
			Activity("A", "act-"+name).
			Final("done").
			Transition("init", "A", 1).
			Transition("A", "done", 1).
			MustBuild()
		w := &spec.Workflow{
			Name:  name,
			Chart: chart,
			Profiles: map[string]spec.ActivityProfile{
				"act-" + name: {Name: "act-" + name, MeanDuration: 2,
					Load: map[string]float64{target: 1}},
			},
			ArrivalRate: xi,
		}
		m, err := spec.Build(w, env)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	hotWF := mk("hotwf", "hot", 1.4)    // ρ_hot = 0.7
	coldWF := mk("coldwf", "cold", 0.2) // ρ_cold = 0.1
	a, err := perf.NewAnalysis(env, []*spec.Model{hotWF, coldWF})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{hotWF, coldWF}, Replicas: []int{1, 1},
		Seed: 9, Horizon: 120000, Warmup: 6000, Dispatch: Random,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic per-request waiting per workflow equals the target
	// type's waiting (exactly one request per instance).
	if got, want := res.WorkflowWaiting[0].Mean, rep.Waiting[0]; math.Abs(got-want)/want > 0.12 {
		t.Errorf("hot workflow waiting %v vs analytic %v", got, want)
	}
	if got, want := res.WorkflowWaiting[1].Mean, rep.Waiting[1]; math.Abs(got-want)/want > 0.2 {
		t.Errorf("cold workflow waiting %v vs analytic %v", got, want)
	}
	if res.WorkflowWaiting[0].Mean <= res.WorkflowWaiting[1].Mean {
		t.Error("hot workflow should wait more than cold")
	}
	// The per-instance delay decomposition: delay = r·w with r = 1.
	if got, want := res.WorkflowWaiting[0].Mean, rep.WorkflowDelay[0]; math.Abs(got-want)/want > 0.12 {
		t.Errorf("workflow delay %v vs analytic decomposition %v", got, want)
	}
}

func TestSecondMomentTermValidated(t *testing.T) {
	// The M/G/1 formula's b^(2) term: at the same mean service time and
	// utilization, a hyperexponential service with SCV 4 must wait
	// (1+4)/(1+1) = 2.5× the exponential case; the simulator should
	// reproduce both levels against their analytic predictions.
	mean := 0.5
	scv := 4.0
	hyper := dist.HyperExpFromMeanSCV(mean, scv)
	b2hyper := hyper.SecondMoment()
	envHyper, err := spec.NewEnvironment(spec.ServerType{
		Name: "srv", Kind: spec.Engine,
		MeanService: mean, ServiceSecondMoment: b2hyper,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := simpleModel(t, envHyper, 1, 2, 1) // ρ = 0.5
	a, err := perf.NewAnalysis(envHyper, []*spec.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{
		Env: envHyper, Models: []*spec.Model{m}, Replicas: []int{1},
		ServiceDists: []dist.Distribution{hyper},
		Seed:         17, Horizon: 150000, Warmup: 7500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Waiting[0].Mean, rep.Waiting[0]; math.Abs(got-want)/want > 0.12 {
		t.Errorf("hyperexponential waiting %v vs analytic %v", got, want)
	}
	// And the analytic prediction itself carries the 2.5× factor over
	// the exponential case at the same mean and utilization.
	expWait := 1.0 * (2 * mean * mean) / (2 * (1 - 0.5))
	if ratio := rep.Waiting[0] / expWait; math.Abs(ratio-2.5) > 1e-9 {
		t.Errorf("analytic SCV ratio = %v, want 2.5", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	env := oneTypeEnv(t, 0.3, 1.0/200, 1.0/10)
	m := simpleModel(t, env, 2, 1, 0.3)
	p := Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{2},
		EnableFailures: true, Seed: 99, Horizon: 5000, Warmup: 500,
	}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different results")
	}
	p.Seed = 100
	c, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical results")
	}
}

func TestFractionalLoadScalesRequests(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 0, 0)
	mHalf := simpleModel(t, env, 0.5, 1, 1)
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{mHalf}, Replicas: []int{1},
		Seed: 13, Horizon: 30000, Warmup: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~0.5 requests per instance at ξ=1 over 29000 time units.
	perInstance := float64(res.RequestsServed[0]) / float64(res.Completed[0])
	if math.Abs(perInstance-0.5) > 0.05 {
		t.Errorf("requests per instance = %v, want ≈0.5", perInstance)
	}
}

func TestEventBudgetEnforced(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 0, 0)
	m := simpleModel(t, env, 1, 1, 10)
	_, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1},
		Horizon: 1e9, MaxEvents: 1000,
	})
	if err == nil {
		t.Error("event budget not enforced")
	}
}

// TestAllReplicasDownParking covers the request-parking path
// (pool.pending): requests arriving while every replica of a type is
// down must be held, re-dispatched FCFS when a repair brings a server
// back, with waiting time measured from the original arrival — and must
// be neither dropped nor double-counted.
//
// The failure process is pinned with deterministic overrides: the single
// replica fails at t=100 and repairs at t=150, and the next failure
// (t=250) lies beyond the horizon, so the run contains exactly one down
// window of width 50.
func TestAllReplicasDownParking(t *testing.T) {
	env := oneTypeEnv(t, 0.1, 1.0/1000, 1.0/10) // rates overridden below
	m := simpleModel(t, env, 1, 1, 2)           // 1 request per instance, rate 2
	const horizon = 170.0
	res, err := Run(Params{
		Env: env, Models: []*spec.Model{m}, Replicas: []int{1},
		EnableFailures: true,
		FailureDists:   []dist.Distribution{dist.NewDeterministic(100)},
		RepairDists:    []dist.Distribution{dist.NewDeterministic(50)},
		Seed:           7, Horizon: horizon, Warmup: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The down window is deterministic, so the measured unavailability
	// is exact: 50 down units over a 160-unit horizon.
	if got, want := res.Unavailability, 50.0/horizon; math.Abs(got-want) > 1e-9 {
		t.Errorf("unavailability = %v, want exactly %v", got, want)
	}

	// Conservation: every instance sends exactly one request (integer
	// load 1), so nothing may be served twice (served > started would
	// need a duplicated request) and nothing may be dropped. The only
	// legal deficit is requests still unfired, queued, or in service at
	// the horizon — a handful at arrival rate 1.
	started := res.Started[0]
	served := res.RequestsServed[0]
	if served > started {
		t.Errorf("served %d requests from %d instances: double-counted", served, started)
	}
	if started-served > 12 {
		t.Errorf("served %d of %d requests: parked requests were dropped", served, started)
	}
	// Waits are recorded when service begins, served counts completions,
	// so the two may differ by at most the one request in service at the
	// horizon.
	if n := res.Waiting[0].N; n != served && n != served+1 {
		t.Errorf("recorded %d waits for %d served requests: want served or served+1", n, served)
	}

	// Waiting must be measured from the original arrival: the earliest
	// request caught by the outage (parked or interrupted in service)
	// waits essentially the whole 50-unit window. If parking restamped
	// arrivals on repair, the maximum would collapse to the ~1-unit
	// queueing scale; if the parked queue were drained LIFO, the
	// earliest parked request would additionally wait out the repair
	// burst (~10 units of backlog), pushing the maximum past 58.
	maxWait := res.Waiting[0].Max
	if maxWait < 46 || maxWait > 55 {
		t.Errorf("max waiting = %v, want ≈50 (FCFS re-dispatch, waiting from original arrival)", maxWait)
	}
	// ~100 arrivals park during the window with mean wait ≈30 (residual
	// window plus FCFS drain), diluted over ≈340 served requests; the
	// up-time waits are ≈0.01. E[mean] ≈ (100·30)/340 ≈ 9.
	if mean := res.Waiting[0].Mean; mean < 5 || mean > 13 {
		t.Errorf("mean waiting = %v, want ≈8 (outage mass diluted over all requests)", mean)
	}
}
