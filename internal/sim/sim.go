// Package sim is a discrete-event simulator of the paper's architectural
// model (Section 2): replicated server types with FCFS queues, workflow
// instances whose control flow follows the per-type CTMC, round-robin
// load partitioning, and optional server failures with repair and online
// failover. It stands in for the testbed measurements of Section 8 and
// is used to validate the analytic performance, availability, and
// performability models.
package sim

import (
	"fmt"
	"math"

	"performa/internal/audit"
	"performa/internal/des"
	"performa/internal/dist"
	"performa/internal/spec"
)

// Params configures one simulation run. All times share the environment's
// time unit.
type Params struct {
	// Env is the server-type universe.
	Env *spec.Environment
	// Models is the workflow mix; each model's workflow carries its
	// arrival rate.
	Models []*spec.Model
	// Replicas is the configuration vector Y.
	Replicas []int
	// ServiceDists optionally overrides the per-type service-time
	// distribution; nil entries (or a nil slice) default to an
	// exponential with the type's mean, whose moments then match the
	// environment's declared moments only if those are exponential too.
	ServiceDists []dist.Distribution
	// EnableFailures turns on per-server failure/repair processes using
	// the environment's rates.
	EnableFailures bool
	// FailureDists optionally overrides the per-type time-to-failure
	// distribution (default: exponential with mean 1/λ_x). Used to
	// verify the renewal-insensitivity of steady-state availability to
	// the failure-time shape.
	FailureDists []dist.Distribution
	// RepairDists optionally overrides the per-type repair-time
	// distribution (default: exponential with mean 1/μ_x).
	RepairDists []dist.Distribution
	// Seed makes runs reproducible.
	Seed uint64
	// Horizon is the simulated duration.
	Horizon float64
	// Warmup discards statistics before this time.
	Warmup float64
	// MaxEvents bounds the run as a safety net; zero means 50 million.
	MaxEvents uint64
	// Dispatch selects the load-partitioning policy among the replicas
	// of a type (Section 4.4 allows "round-robin or random").
	Dispatch DispatchPolicy
	// Colocated lists groups of server-type indices sharing the same
	// computers (Section 4.4's generalized case): the group's types
	// must have equal replica counts, and each computer serves the
	// merged request stream with type-specific service times. Waiting
	// statistics remain per type.
	Colocated [][]int
	// TrueConcurrency walks each instance through the UNCOLLAPSED
	// statechart with fork/join tokens (one token per orthogonal
	// subchart, join barriers) instead of the collapsed CTMC, so the
	// measured turnaround carries the true E[max] of parallel branches
	// rather than the paper's max-of-means collapse. Requires every
	// model to carry its Workflow (chart + profiles). See concurrent.go.
	TrueConcurrency bool
	// Trail optionally collects an audit trail of the run: instance
	// life cycles, state entries/exits on the top-level chart, activity
	// spans, and per-request waiting/service times — the same record
	// stream a production WFMS would emit, usable as calibration input
	// (package calibrate, package stream) and for replay against a
	// running daemon (cmd/wfmsreplay). Recording draws no random
	// numbers, so enabling it does not perturb the simulated run.
	Trail *audit.Trail
}

// DispatchPolicy selects how requests are assigned to replicas.
type DispatchPolicy int

const (
	// RoundRobin cycles deterministically through the up servers.
	RoundRobin DispatchPolicy = iota
	// Random picks an up server uniformly at random; random splitting
	// of a Poisson stream stays Poisson, which is the regime the M/G/1
	// model describes exactly.
	Random
	// SharedQueue keeps one central queue per server type; any idle up
	// replica takes the next request. This is the M/M/c pooling regime
	// (work-conserving), which waits strictly less than the paper's
	// split-queue model — see ablation A7.
	SharedQueue
)

// String returns the policy's name.
func (d DispatchPolicy) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case Random:
		return "random"
	case SharedQueue:
		return "shared-queue"
	default:
		return fmt.Sprintf("DispatchPolicy(%d)", int(d))
	}
}

func (p Params) validate() error {
	if p.Env == nil {
		return fmt.Errorf("sim: nil environment")
	}
	if len(p.Models) == 0 {
		return fmt.Errorf("sim: no workflow models")
	}
	if len(p.Replicas) != p.Env.K() {
		return fmt.Errorf("sim: %d replication degrees for %d server types", len(p.Replicas), p.Env.K())
	}
	if !(p.Horizon > 0) {
		return fmt.Errorf("sim: horizon %v must be positive", p.Horizon)
	}
	if p.Warmup < 0 || p.Warmup >= p.Horizon {
		return fmt.Errorf("sim: warmup %v must be in [0, horizon)", p.Warmup)
	}
	if p.ServiceDists != nil && len(p.ServiceDists) != p.Env.K() {
		return fmt.Errorf("sim: %d service distributions for %d server types", len(p.ServiceDists), p.Env.K())
	}
	if p.FailureDists != nil && len(p.FailureDists) != p.Env.K() {
		return fmt.Errorf("sim: %d failure distributions for %d server types", len(p.FailureDists), p.Env.K())
	}
	if p.RepairDists != nil && len(p.RepairDists) != p.Env.K() {
		return fmt.Errorf("sim: %d repair distributions for %d server types", len(p.RepairDists), p.Env.K())
	}
	if len(p.Colocated) > 0 && p.EnableFailures {
		return fmt.Errorf("sim: co-location with failures is not supported (a shared computer's failure semantics are ambiguous across types)")
	}
	seen := map[int]bool{}
	for _, g := range p.Colocated {
		for _, x := range g {
			if x < 0 || x >= p.Env.K() {
				return fmt.Errorf("sim: co-location group references unknown server type %d", x)
			}
			if seen[x] {
				return fmt.Errorf("sim: server type %d appears in more than one co-location group", x)
			}
			seen[x] = true
		}
		for _, x := range g[1:] {
			if p.Replicas[x] != p.Replicas[g[0]] {
				return fmt.Errorf("sim: co-located types %d and %d have different replica counts", g[0], x)
			}
		}
	}
	for _, m := range p.Models {
		if m.Workflow == nil {
			return fmt.Errorf("sim: model without workflow")
		}
	}
	return nil
}

// Moments summarizes a tally for reporting.
type Moments struct {
	N            uint64
	Mean         float64
	SecondMoment float64
	StdErr       float64
	Min, Max     float64
}

func momentsOf(t *des.Tally) Moments {
	return Moments{
		N: t.N(), Mean: t.Mean(), SecondMoment: t.SecondMoment(), StdErr: t.StdErr(),
		Min: t.Min(), Max: t.Max(),
	}
}

// Result reports the measurements of one run.
type Result struct {
	// Waiting[x] summarizes observed request waiting times at type x.
	Waiting []Moments
	// WaitingP95[x] is the empirical 95th-percentile waiting time at
	// type x (reservoir-sampled), the tail-latency view the mean-value
	// models don't give.
	WaitingP95 []float64
	// Utilization[x] is the observed mean fraction of busy servers of
	// type x (averaged over configured replicas).
	Utilization []float64
	// Unavailability is the observed fraction of time some server type
	// had no replica up (only meaningful with EnableFailures).
	Unavailability float64
	// Turnaround[i] summarizes the turnaround of workflow i's
	// completed instances.
	Turnaround []Moments
	// WorkflowWaiting[i] summarizes the per-request queueing delays of
	// workflow i's requests across all server types, the observable
	// behind the analytic per-workflow delay decomposition
	// (perf.Report.WorkflowDelay).
	WorkflowWaiting []Moments
	// Started and Completed count workflow instances per model after
	// warmup.
	Started, Completed []uint64
	// RequestsServed counts served requests per type after warmup.
	RequestsServed []uint64
	// Events is the number of simulation events fired.
	Events uint64
}

type request struct {
	typeIdx int
	wfIdx   int
	arrived float64
}

type server struct {
	pool  *pool
	id    int
	up    bool
	busy  bool
	queue []request
	head  int
	// svcEvent is the pending service-completion event, cancelled on
	// failure.
	svcEvent *des.Event
	current  request
}

func (s *server) pending() int { return len(s.queue) - s.head }

func (s *server) push(r request) { s.queue = append(s.queue, r) }

func (s *server) popAll() []request {
	out := append([]request(nil), s.queue[s.head:]...)
	s.queue = s.queue[:0]
	s.head = 0
	return out
}

func (s *server) pop() (request, bool) {
	if s.head >= len(s.queue) {
		return request{}, false
	}
	r := s.queue[s.head]
	s.head++
	if s.head > 1024 && s.head*2 > len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
	return r, true
}

type pool struct {
	typeIdx int
	servers []*server
	rr      int
	upCount int
	pending []request // requests arriving while every server is down
	// central is the shared FCFS queue used by the SharedQueue policy.
	central []request
	cHead   int
	busyAvg des.TimeWeighted
	waiting des.Tally
	waitQ   *des.Reservoir
	served  uint64
	svcDist dist.Distribution
	busyNow int
}

func (pl *pool) pushCentral(r request) { pl.central = append(pl.central, r) }

func (pl *pool) popCentral() (request, bool) {
	if pl.cHead >= len(pl.central) {
		return request{}, false
	}
	r := pl.central[pl.cHead]
	pl.cHead++
	if pl.cHead > 1024 && pl.cHead*2 > len(pl.central) {
		pl.central = append(pl.central[:0], pl.central[pl.cHead:]...)
		pl.cHead = 0
	}
	return r, true
}

// idleUpServer returns an up, non-busy replica, or nil.
func (pl *pool) idleUpServer() *server {
	for _, sv := range pl.servers {
		if sv.up && !sv.busy {
			return sv
		}
	}
	return nil
}

type runner struct {
	p     Params
	sim   *des.Simulator
	rng   *dist.RNG
	pools []*pool
	// station[x] is the pool index whose servers serve type x's
	// requests: x itself, or the first member of x's co-location group.
	station  []int
	svcDists []dist.Distribution
	downAvg  des.TimeWeighted

	started    []uint64
	completed  []uint64
	turnaround []des.Tally
	wfWaiting  []des.Tally
	warm       bool

	// Trail recording (nil when Params.Trail is unset).
	trail   *audit.Trail
	instSeq uint64
	meta    []trailMeta

	// concPlans holds the per-model chart walker plans of the
	// true-concurrency mode (nil otherwise).
	concPlans []*chartPlan
}

// trailMeta caches the per-model name mappings the trail recorder needs:
// CTMC state index → chart state name and activity, plus the pseudo
// final state to synthesize a StateEntered for (the chart's final state
// is spliced into the absorbing s_A during the CTMC mapping, so without
// the synthetic record the final transition of every instance would be
// invisible to calibration).
type trailMeta struct {
	workflow    string
	chart       string
	states      []string
	acts        []string
	pseudoFinal string
}

func newTrailMeta(m *spec.Model) trailMeta {
	tm := trailMeta{states: m.StateNames}
	w := m.Workflow
	if w == nil || w.Chart == nil {
		return tm
	}
	tm.workflow = w.Name
	if tm.workflow == "" {
		tm.workflow = w.Chart.Name
	}
	tm.chart = w.Chart.Name
	tm.acts = make([]string, len(m.StateNames))
	for i, name := range m.StateNames {
		if s, ok := w.Chart.States[name]; ok {
			tm.acts[i] = s.Activity
		}
	}
	if f, ok := w.Chart.States[w.Chart.Final]; ok && f.Activity == "" && len(f.Subcharts) == 0 {
		tm.pseudoFinal = w.Chart.Final
	}
	return tm
}

// Run executes one simulation and returns its measurements.
func Run(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.MaxEvents == 0 {
		p.MaxEvents = 50_000_000
	}
	r := &runner{
		p:          p,
		sim:        des.New(),
		rng:        dist.NewRNG(p.Seed),
		started:    make([]uint64, len(p.Models)),
		completed:  make([]uint64, len(p.Models)),
		turnaround: make([]des.Tally, len(p.Models)),
		wfWaiting:  make([]des.Tally, len(p.Models)),
	}
	if p.Trail != nil {
		r.trail = p.Trail
		r.meta = make([]trailMeta, len(p.Models))
		for i, m := range p.Models {
			r.meta[i] = newTrailMeta(m)
		}
	}
	if p.TrueConcurrency {
		if err := r.buildConcurrentPlans(); err != nil {
			return nil, err
		}
	}

	// Resolve co-location: requests of every group member run on the
	// group's first type's servers.
	r.station = make([]int, p.Env.K())
	for x := range r.station {
		r.station[x] = x
	}
	for _, g := range p.Colocated {
		for _, x := range g {
			r.station[x] = g[0]
		}
	}

	// Build server pools.
	r.svcDists = make([]dist.Distribution, p.Env.K())
	for x := 0; x < p.Env.K(); x++ {
		st := p.Env.Type(x)
		var d dist.Distribution
		if p.ServiceDists != nil && p.ServiceDists[x] != nil {
			d = p.ServiceDists[x]
		} else {
			d = dist.ExponentialFromMean(st.MeanService)
		}
		r.svcDists[x] = d
		pl := &pool{typeIdx: x, svcDist: d, waitQ: des.NewReservoir(8192, p.Seed+uint64(x)+1)}
		if r.station[x] == x {
			for i := 0; i < p.Replicas[x]; i++ {
				pl.servers = append(pl.servers, &server{pool: pl, id: i, up: true})
			}
		}
		pl.upCount = len(pl.servers)
		pl.busyAvg.Set(0, 0)
		r.pools = append(r.pools, pl)
	}
	// A type with workload but no replicas can never serve.
	for i, m := range p.Models {
		req := m.ExpectedRequests()
		for x, v := range req {
			if v > 0 && p.Replicas[x] == 0 {
				return nil, fmt.Errorf("sim: workflow %d sends load to type %d which has zero replicas", i, x)
			}
		}
	}
	r.downAvg.Set(0, boolTo01(r.systemDown()))

	// Failure processes.
	if p.EnableFailures {
		for _, pl := range r.pools {
			st := p.Env.Type(pl.typeIdx)
			if st.FailureRate <= 0 {
				continue
			}
			for _, sv := range pl.servers {
				r.scheduleFailure(sv, st.FailureRate)
			}
		}
	}

	// Workflow arrival processes.
	for i, m := range p.Models {
		if m.Workflow.ArrivalRate > 0 {
			r.scheduleArrival(i, m)
		}
	}

	// Warmup boundary: reset collectors.
	r.sim.At(p.Warmup, func() {
		r.warm = true
		now := r.sim.Now()
		for _, pl := range r.pools {
			pl.waiting.Reset()
			pl.waitQ.Reset()
			pl.served = 0
			pl.busyAvg.ResetAt(now)
		}
		r.downAvg.ResetAt(now)
		for i := range r.turnaround {
			r.turnaround[i].Reset()
			r.wfWaiting[i].Reset()
			r.started[i] = 0
			r.completed[i] = 0
		}
	})

	if !r.sim.RunUntilCapped(p.Horizon, p.MaxEvents) {
		return nil, fmt.Errorf("sim: event budget %d exhausted at t=%v", p.MaxEvents, r.sim.Now())
	}

	res := &Result{
		Waiting:        make([]Moments, len(r.pools)),
		Utilization:    make([]float64, len(r.pools)),
		RequestsServed: make([]uint64, len(r.pools)),
		Started:        r.started,
		Completed:      r.completed,
		Events:         r.sim.Fired(),
	}
	res.WaitingP95 = make([]float64, len(r.pools))
	for x, pl := range r.pools {
		res.Waiting[x] = momentsOf(&pl.waiting)
		res.WaitingP95[x] = pl.waitQ.Quantile(0.95)
		station := r.pools[r.station[x]]
		if n := len(station.servers); n > 0 {
			res.Utilization[x] = station.busyAvg.Average(p.Horizon) / float64(n)
		}
		res.RequestsServed[x] = pl.served
	}
	if down := r.downAvg.Average(p.Horizon); !math.IsNaN(down) {
		res.Unavailability = down
	}
	for i := range r.turnaround {
		res.Turnaround = append(res.Turnaround, momentsOf(&r.turnaround[i]))
		res.WorkflowWaiting = append(res.WorkflowWaiting, momentsOf(&r.wfWaiting[i]))
	}
	return res, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (r *runner) systemDown() bool {
	for _, pl := range r.pools {
		if len(pl.servers) > 0 && pl.upCount == 0 {
			return true
		}
	}
	return false
}

func (r *runner) noteAvailability() {
	r.downAvg.Set(r.sim.Now(), boolTo01(r.systemDown()))
}

// scheduleArrival arms the next Poisson arrival of workflow model i.
func (r *runner) scheduleArrival(i int, m *spec.Model) {
	delay := r.rng.Exp(m.Workflow.ArrivalRate)
	r.sim.Schedule(delay, func() {
		r.started[i]++
		r.startInstance(i, m)
		r.scheduleArrival(i, m)
	})
}

// startInstance begins the CTMC walk of one workflow instance (or the
// fork/join chart walk in true-concurrency mode).
func (r *runner) startInstance(i int, m *spec.Model) {
	if r.p.TrueConcurrency {
		r.startInstanceConcurrent(i, m)
		return
	}
	var inst uint64
	if r.trail != nil {
		r.instSeq++
		inst = r.instSeq
		r.trail.Append(audit.Record{
			Kind: audit.InstanceStarted, Time: r.sim.Now(),
			Workflow: r.meta[i].workflow, Instance: inst,
		})
	}
	r.enterState(i, m, 0, r.sim.Now(), inst)
}

// recordState appends a state-entry/exit record for the instance, using
// the chart-level state name of the CTMC state.
func (r *runner) recordState(kind audit.EventKind, i int, inst uint64, state int) {
	tm := &r.meta[i]
	if tm.chart == "" || state >= len(tm.states) {
		return
	}
	r.trail.Append(audit.Record{
		Kind: kind, Time: r.sim.Now(),
		Workflow: tm.workflow, Instance: inst,
		Chart: tm.chart, State: tm.states[state],
	})
}

// recordActivity appends an activity-span record if the CTMC state maps
// to a flat activity state of the chart.
func (r *runner) recordActivity(kind audit.EventKind, i int, inst uint64, state int) {
	tm := &r.meta[i]
	if tm.acts == nil || state >= len(tm.acts) || tm.acts[state] == "" {
		return
	}
	r.trail.Append(audit.Record{
		Kind: kind, Time: r.sim.Now(),
		Workflow: tm.workflow, Instance: inst, Activity: tm.acts[state],
	})
}

// enterState processes one CTMC state visit: it draws the residence time,
// spreads the state's service requests uniformly over the residence
// period, and schedules the jump to the next state.
func (r *runner) enterState(i int, m *spec.Model, state int, born float64, inst uint64) {
	abs := m.Chain.Absorbing()
	if state == abs {
		if r.warm {
			r.completed[i]++
			r.turnaround[i].Add(r.sim.Now() - born)
		}
		if r.trail != nil {
			// The chart's pseudo final state was spliced into s_A by the
			// CTMC mapping; synthesize its entry so the trail shows the
			// final chart transition.
			if tm := &r.meta[i]; tm.pseudoFinal != "" {
				r.trail.Append(audit.Record{
					Kind: audit.StateEntered, Time: r.sim.Now(),
					Workflow: tm.workflow, Instance: inst,
					Chart: tm.chart, State: tm.pseudoFinal,
				})
			}
			r.trail.Append(audit.Record{
				Kind: audit.InstanceCompleted, Time: r.sim.Now(),
				Workflow: r.meta[i].workflow, Instance: inst,
			})
		}
		return
	}
	if r.trail != nil {
		r.recordState(audit.StateEntered, i, inst, state)
		r.recordActivity(audit.ActivityStarted, i, inst, state)
	}
	h := m.Chain.H[state]
	residence := r.rng.Exp(1 / h)

	// Service requests on each type: the load matrix entry is an
	// expectation; draw integer + Bernoulli(frac) and spread the
	// requests uniformly over the residence period so the aggregate
	// arrival process stays close to Poisson (what the M/G/1 model
	// assumes).
	for x := 0; x < len(r.pools); x++ {
		load := m.Load.At(x, state)
		if load == 0 {
			continue
		}
		n := int(load)
		if frac := load - float64(n); frac > 0 && r.rng.Float64() < frac {
			n++
		}
		for j := 0; j < n; j++ {
			at := r.rng.Float64() * residence
			x := x
			r.sim.Schedule(at, func() { r.dispatch(x, i) })
		}
	}

	r.sim.Schedule(residence, func() {
		if r.trail != nil {
			r.recordActivity(audit.ActivityCompleted, i, inst, state)
			r.recordState(audit.StateLeft, i, inst, state)
		}
		next := r.pickNext(m, state)
		r.enterState(i, m, next, born, inst)
	})
}

func (r *runner) pickNext(m *spec.Model, state int) int {
	u := r.rng.Float64()
	var cum float64
	row := m.Chain.P.Row(state)
	last := m.Chain.Absorbing()
	for j, p := range row {
		if p == 0 {
			continue
		}
		cum += p
		last = j
		if u < cum {
			return j
		}
	}
	return last
}

// dispatch routes a new service request to an up server of the type,
// round-robin, or parks it while the whole type is down.
func (r *runner) dispatch(x, wfIdx int) {
	pl := r.pools[r.station[x]]
	req := request{typeIdx: x, wfIdx: wfIdx, arrived: r.sim.Now()}
	if r.p.Dispatch == SharedQueue {
		pl.pushCentral(req)
		if sv := pl.idleUpServer(); sv != nil {
			r.beginService(sv)
		}
		return
	}
	sv := r.nextUpServer(pl)
	if sv == nil {
		pl.pending = append(pl.pending, req)
		return
	}
	sv.push(req)
	if !sv.busy && sv.up {
		r.beginService(sv)
	}
}

func (r *runner) nextUpServer(pl *pool) *server {
	n := len(pl.servers)
	if n == 0 || pl.upCount == 0 {
		return nil
	}
	if r.p.Dispatch == Random {
		// Pick uniformly among up servers.
		pick := r.rng.Intn(pl.upCount)
		for _, sv := range pl.servers {
			if sv.up {
				if pick == 0 {
					return sv
				}
				pick--
			}
		}
		return nil
	}
	for probe := 0; probe < n; probe++ {
		sv := pl.servers[pl.rr%n]
		pl.rr++
		if sv.up {
			return sv
		}
	}
	return nil
}

func (r *runner) beginService(sv *server) {
	req, ok := sv.pop()
	if !ok && r.p.Dispatch == SharedQueue {
		req, ok = sv.pool.popCentral()
	}
	if !ok {
		return
	}
	pl := sv.pool
	typed := r.pools[req.typeIdx]
	sv.busy = true
	sv.current = req
	pl.busyNow++
	pl.busyAvg.Set(r.sim.Now(), float64(pl.busyNow))
	w := r.sim.Now() - req.arrived
	if r.warm {
		typed.waiting.Add(w)
		typed.waitQ.Add(w)
		r.wfWaiting[req.wfIdx].Add(w)
	}
	svcTime := r.svcDists[req.typeIdx].Sample(r.rng)
	if r.trail != nil {
		r.trail.Append(audit.Record{
			Kind: audit.ServiceRequest, Time: r.sim.Now(),
			Workflow:   r.meta[req.wfIdx].workflow,
			ServerType: r.p.Env.Type(req.typeIdx).Name, Server: sv.id,
			Waiting: w, Service: svcTime,
		})
	}
	sv.svcEvent = r.sim.Schedule(svcTime, func() {
		sv.svcEvent = nil
		sv.busy = false
		pl.busyNow--
		pl.busyAvg.Set(r.sim.Now(), float64(pl.busyNow))
		if r.warm {
			typed.served++
		}
		if sv.up {
			r.beginService(sv)
		}
	})
}

// scheduleFailure arms the next failure of a server.
func (r *runner) scheduleFailure(sv *server, lambda float64) {
	ttf := r.rng.Exp(lambda)
	if d := r.distFor(r.p.FailureDists, sv.pool.typeIdx); d != nil {
		ttf = d.Sample(r.rng)
	}
	r.sim.Schedule(ttf, func() { r.fail(sv) })
}

// distFor returns the per-type override distribution, if any.
func (r *runner) distFor(dists []dist.Distribution, typeIdx int) dist.Distribution {
	if dists == nil || typeIdx >= len(dists) {
		return nil
	}
	return dists[typeIdx]
}

func (r *runner) fail(sv *server) {
	pl := sv.pool
	st := r.p.Env.Type(pl.typeIdx)
	sv.up = false
	pl.upCount--
	r.noteAvailability()

	// Abort the in-progress request and recover everything queued; the
	// failover backup re-executes the interrupted request from scratch.
	var recovered []request
	if sv.busy {
		r.sim.Cancel(sv.svcEvent)
		sv.svcEvent = nil
		sv.busy = false
		pl.busyNow--
		pl.busyAvg.Set(r.sim.Now(), float64(pl.busyNow))
		recovered = append(recovered, sv.current)
	}
	recovered = append(recovered, sv.popAll()...)
	if r.p.Dispatch == SharedQueue {
		for _, req := range recovered {
			pl.pushCentral(req)
		}
		for range recovered {
			peer := pl.idleUpServer()
			if peer == nil {
				break
			}
			r.beginService(peer)
		}
	} else {
		for _, req := range recovered {
			if peer := r.nextUpServer(pl); peer != nil {
				peer.push(req)
				if !peer.busy {
					r.beginService(peer)
				}
			} else {
				pl.pending = append(pl.pending, req)
			}
		}
	}

	// Repair, then the next failure cycle.
	ttr := r.rng.Exp(st.RepairRate)
	if d := r.distFor(r.p.RepairDists, pl.typeIdx); d != nil {
		ttr = d.Sample(r.rng)
	}
	r.sim.Schedule(ttr, func() {
		sv.up = true
		pl.upCount++
		r.noteAvailability()
		// Adopt requests parked while the whole type was down.
		parked := pl.pending
		pl.pending = nil
		for _, req := range parked {
			sv.push(req)
		}
		if !sv.busy {
			r.beginService(sv)
		}
		r.scheduleFailure(sv, st.FailureRate)
	})
}
