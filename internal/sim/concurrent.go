package sim

import (
	"fmt"

	"performa/internal/audit"
	"performa/internal/spec"
	"performa/internal/statechart"
)

// True-concurrency mode: instead of walking the collapsed CTMC of
// spec.Build — where a parallel AND-state is one state whose residence
// is the max of the subworkflows' MEAN turnarounds — the instance walks
// the uncollapsed statechart with fork/join tokens: entering an
// AND-state spawns one token per orthogonal subchart and a join barrier
// releases the parent only when every branch has completed. The
// measured turnaround therefore contains E[max of the branch turnaround
// VARIABLES], the quantity the paper's Section 4.2.2 collapse
// underestimates, which makes this mode the simulation side of the
// wfnet differential route (crossval -net): a validator that simulates
// the collapsed model can never falsify the collapse.
//
// Everything else is shared with the collapsed mode: the des event
// core, the server pools and dispatch policies, the request spreading
// over Erlang stages, and the audit-trail record stream (top-level
// states and activities, service requests).

// concTarget is one resolved outgoing branch of a chart state: the next
// plan state, or -1 for chart completion.
type concTarget struct {
	prob float64
	next int
}

// concLoad is the per-stage expected request load on one server type.
type concLoad struct {
	typeIdx  int
	perStage float64
}

// concState is the walker plan for one real chart state.
type concState struct {
	name     string
	activity string // "" for AND states
	stages   int
	rate     float64 // per-stage exit rate stages/duration (activities)
	loads    []concLoad
	subs     []*chartPlan // non-nil for AND states: one plan per branch
	out      []concTarget
}

// chartPlan pre-resolves one chart level for the token walker: real
// states in StateNames order, the spliced initial state, and outgoing
// probabilities with pseudo-state targets resolved.
type chartPlan struct {
	chart   *statechart.Chart
	states  []concState
	initial int
}

// buildChartPlan compiles a chart (and, recursively, the subcharts of
// its AND states) into a walker plan.
func buildChartPlan(chart *statechart.Chart, profiles map[string]spec.ActivityProfile, env *spec.Environment) (*chartPlan, error) {
	real := make(map[string]bool, len(chart.States))
	for name, s := range chart.States {
		if s.Activity != "" || len(s.Subcharts) > 0 {
			real[name] = true
		} else if name != chart.Initial && name != chart.Final {
			return nil, fmt.Errorf("sim: chart %q: state %q has neither an activity nor a subworkflow", chart.Name, name)
		}
	}
	initial := chart.Initial
	if !real[initial] {
		out := chart.Outgoing(initial)
		if len(out) != 1 || !real[out[0].To] {
			return nil, fmt.Errorf("sim: chart %q: pseudo initial state %q must lead to exactly one real state", chart.Name, initial)
		}
		initial = out[0].To
	}

	plan := &chartPlan{chart: chart}
	index := make(map[string]int, len(chart.States))
	for _, name := range chart.StateNames() {
		if !real[name] {
			continue
		}
		index[name] = len(plan.states)
		s := chart.States[name]
		cs := concState{name: name, activity: s.Activity, stages: 1}
		if s.Activity != "" {
			prof := profiles[s.Activity]
			if k := prof.DurationStages; k > 1 {
				cs.stages = k
			}
			if !(prof.MeanDuration > 0) {
				return nil, fmt.Errorf("sim: chart %q activity %q has non-positive mean duration", chart.Name, s.Activity)
			}
			cs.rate = float64(cs.stages) / prof.MeanDuration
			for serverType, l := range prof.Load {
				x, ok := env.Index(serverType)
				if !ok {
					return nil, fmt.Errorf("sim: chart %q activity %q loads unknown server type %q", chart.Name, s.Activity, serverType)
				}
				if l > 0 {
					cs.loads = append(cs.loads, concLoad{typeIdx: x, perStage: l / float64(cs.stages)})
				}
			}
			// Deterministic load order regardless of map iteration.
			for a := 1; a < len(cs.loads); a++ {
				for b := a; b > 0 && cs.loads[b].typeIdx < cs.loads[b-1].typeIdx; b-- {
					cs.loads[b], cs.loads[b-1] = cs.loads[b-1], cs.loads[b]
				}
			}
		} else {
			for _, sub := range s.Subcharts {
				subPlan, err := buildChartPlan(sub, profiles, env)
				if err != nil {
					return nil, err
				}
				cs.subs = append(cs.subs, subPlan)
			}
		}
		plan.states = append(plan.states, cs)
	}
	plan.initial = index[initial]

	for i := range plan.states {
		name := plan.states[i].name
		for _, t := range chart.Outgoing(name) {
			tgt := concTarget{prob: t.Prob}
			switch {
			case real[t.To]:
				tgt.next = index[t.To]
			case t.To == chart.Initial:
				// Loop back through the pseudo initial state re-enters
				// the spliced first real state (as in spec.Build).
				tgt.next = index[initial]
			default: // pseudo final
				tgt.next = -1
			}
			plan.states[i].out = append(plan.states[i].out, tgt)
		}
		// A real final state absorbs with probability one.
		if len(plan.states[i].out) == 0 {
			plan.states[i].out = []concTarget{{prob: 1, next: -1}}
		}
	}
	return plan, nil
}

// buildConcurrentPlans compiles every model's chart for the walker.
func (r *runner) buildConcurrentPlans() error {
	r.concPlans = make([]*chartPlan, len(r.p.Models))
	for i, m := range r.p.Models {
		w := m.Workflow
		if w == nil || w.Chart == nil {
			return fmt.Errorf("sim: true-concurrency mode needs the workflow chart for model %d", i)
		}
		plan, err := buildChartPlan(w.Chart, w.Profiles, r.p.Env)
		if err != nil {
			return err
		}
		r.concPlans[i] = plan
	}
	return nil
}

// startInstanceConcurrent begins a fork/join token walk of workflow i's
// uncollapsed chart.
func (r *runner) startInstanceConcurrent(i int, m *spec.Model) {
	var inst uint64
	if r.trail != nil {
		r.instSeq++
		inst = r.instSeq
		r.trail.Append(audit.Record{
			Kind: audit.InstanceStarted, Time: r.sim.Now(),
			Workflow: r.meta[i].workflow, Instance: inst,
		})
	}
	born := r.sim.Now()
	plan := r.concPlans[i]
	r.walkChart(i, plan, inst, true, func() {
		if r.warm {
			r.completed[i]++
			r.turnaround[i].Add(r.sim.Now() - born)
		}
		if r.trail != nil {
			if tm := &r.meta[i]; tm.pseudoFinal != "" {
				r.trail.Append(audit.Record{
					Kind: audit.StateEntered, Time: r.sim.Now(),
					Workflow: tm.workflow, Instance: inst,
					Chart: tm.chart, State: tm.pseudoFinal,
				})
			}
			r.trail.Append(audit.Record{
				Kind: audit.InstanceCompleted, Time: r.sim.Now(),
				Workflow: r.meta[i].workflow, Instance: inst,
			})
		}
	})
}

// walkChart sends one token through a chart plan; done fires when the
// token reaches the chart's final state. top marks the instance's
// top-level chart, whose state entries/exits and activity spans are
// recorded on the trail (matching the collapsed mode, which only sees
// top-level states).
func (r *runner) walkChart(i int, plan *chartPlan, inst uint64, top bool, done func()) {
	r.enterConcState(i, plan, plan.initial, inst, top, done)
}

// recordConcState appends a state record with an explicit state name.
func (r *runner) recordConcState(kind audit.EventKind, i int, inst uint64, state string) {
	tm := &r.meta[i]
	if tm.chart == "" {
		return
	}
	r.trail.Append(audit.Record{
		Kind: kind, Time: r.sim.Now(),
		Workflow: tm.workflow, Instance: inst,
		Chart: tm.chart, State: state,
	})
}

// recordConcActivity appends an activity span record.
func (r *runner) recordConcActivity(kind audit.EventKind, i int, inst uint64, activity string) {
	if activity == "" {
		return
	}
	r.trail.Append(audit.Record{
		Kind: kind, Time: r.sim.Now(),
		Workflow: r.meta[i].workflow, Instance: inst, Activity: activity,
	})
}

// enterConcState processes one token's visit of one chart state.
func (r *runner) enterConcState(i int, plan *chartPlan, state int, inst uint64, top bool, done func()) {
	cs := &plan.states[state]
	if r.trail != nil && top {
		r.recordConcState(audit.StateEntered, i, inst, cs.name)
		r.recordConcActivity(audit.ActivityStarted, i, inst, cs.activity)
	}
	leave := func() {
		if r.trail != nil && top {
			r.recordConcActivity(audit.ActivityCompleted, i, inst, cs.activity)
			r.recordConcState(audit.StateLeft, i, inst, cs.name)
		}
		next := r.pickConcNext(cs)
		if next < 0 {
			done()
			return
		}
		r.enterConcState(i, plan, next, inst, top, done)
	}

	if cs.subs != nil {
		// AND state: fork one token per orthogonal subchart; the join
		// barrier releases the parent when the last branch completes.
		remaining := len(cs.subs)
		for _, sub := range cs.subs {
			r.walkChart(i, sub, inst, false, func() {
				remaining--
				if remaining == 0 {
					leave()
				}
			})
		}
		return
	}

	// Activity state: an Erlang stage sequence with per-stage request
	// spreading, exactly like the collapsed route's stage expansion.
	var stage func(idx int)
	stage = func(idx int) {
		residence := r.rng.Exp(cs.rate)
		for _, ld := range cs.loads {
			n := int(ld.perStage)
			if frac := ld.perStage - float64(n); frac > 0 && r.rng.Float64() < frac {
				n++
			}
			for j := 0; j < n; j++ {
				at := r.rng.Float64() * residence
				x := ld.typeIdx
				r.sim.Schedule(at, func() { r.dispatch(x, i) })
			}
		}
		r.sim.Schedule(residence, func() {
			if idx+1 < cs.stages {
				stage(idx + 1)
				return
			}
			leave()
		})
	}
	stage(0)
}

// pickConcNext samples the outgoing branch of a chart state.
func (r *runner) pickConcNext(cs *concState) int {
	u := r.rng.Float64()
	var cum float64
	next := cs.out[len(cs.out)-1].next
	for _, t := range cs.out {
		cum += t.prob
		if u < cum {
			return t.next
		}
	}
	return next
}
