// Package experiments implements the reproduction harness: one function
// per experiment of DESIGN.md's experiment index (E1–E8 plus the A-series
// ablations), each regenerating the corresponding table of EXPERIMENTS.md
// from the models, the simulator, or the mini-WFMS runtime.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
	// Notes carry per-table commentary (paper reference values,
	// tolerances, caveats).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly.
func f(x float64) string { return fmt.Sprintf("%.6g", x) }

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
