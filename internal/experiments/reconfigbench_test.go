package experiments

import "testing"

// The reduced E19 shape over the committed corpus: every system must
// complete the loop and produce an advisory row.
func TestReconfigBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfig bench smoke skipped in -short")
	}
	rows, tbl, err := ReconfigBench("../../corpus", true)
	if err != nil {
		t.Fatalf("ReconfigBench: %v", err)
	}
	if len(rows) == 0 || tbl == nil {
		t.Fatalf("no rows")
	}
	for _, r := range rows {
		if r.Outcome == "" {
			t.Errorf("%s: empty outcome", r.System)
		}
		if r.AdvisoryLatencyMS <= 0 || r.EndToEndMS <= 0 {
			t.Errorf("%s: non-positive latency (%v, %v)", r.System, r.AdvisoryLatencyMS, r.EndToEndMS)
		}
		if r.Outcome == "advised" && len(r.AdvisedConfig) != r.Types {
			t.Errorf("%s: advised config %v for %d types", r.System, r.AdvisedConfig, r.Types)
		}
	}
}
