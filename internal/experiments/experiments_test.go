package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a float cell back, tolerating units suffixes.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestE1ReproducesPaperNumbers(t *testing.T) {
	tbl, err := E1Availability()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// (1,1,1): ~71 hours/yr.
	if h := parse(t, tbl.Rows[0][3]); h < 70 || h > 72 {
		t.Errorf("(1,1,1) downtime = %v h, paper says 71", h)
	}
	if !strings.HasSuffix(tbl.Rows[0][3], " h") {
		t.Errorf("unit = %q", tbl.Rows[0][3])
	}
	// (3,3,3): ~10 s/yr.
	if s := parse(t, tbl.Rows[1][3]); s < 9 || s > 11.5 {
		t.Errorf("(3,3,3) downtime = %v s, paper says 10", s)
	}
	if !strings.HasSuffix(tbl.Rows[1][3], " s") {
		t.Errorf("unit = %q", tbl.Rows[1][3])
	}
	// (2,2,3): < 1 min/yr.
	cell := tbl.Rows[2][3]
	v := parse(t, cell)
	if strings.HasSuffix(cell, " s") {
		if v >= 60 {
			t.Errorf("(2,2,3) downtime = %v s, want < 60", v)
		}
	} else if !strings.HasSuffix(cell, " s") && v >= 1 {
		t.Errorf("(2,2,3) downtime = %q, want below a minute", cell)
	}
	// Exact and product form agree.
	for i, row := range tbl.Rows {
		if row[3] != row[4] {
			t.Errorf("row %d: exact %q vs product %q", i, row[3], row[4])
		}
	}
}

func TestE2TableShape(t *testing.T) {
	tbl, err := E2EPWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Errorf("EP has %d states in the table, want 7", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "NewOrder_S" {
		t.Errorf("first state = %q", tbl.Rows[0][0])
	}
	if got := parse(t, tbl.Rows[0][2]); got != 1 {
		t.Errorf("visits(NewOrder) = %v", got)
	}
}

func TestE3ThroughputScalesWithReplication(t *testing.T) {
	tbl, err := E3Throughput()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of three (Y = 1, 2, 4) per rate; throughput
	// must scale linearly within a group.
	for g := 0; g+2 < len(tbl.Rows); g += 3 {
		t1 := parse(t, tbl.Rows[g][7])
		t2 := parse(t, tbl.Rows[g+1][7])
		t4 := parse(t, tbl.Rows[g+2][7])
		if !(t2 > 1.9*t1 && t2 < 2.1*t1) {
			t.Errorf("group %d: throughput(2Y) = %v, want ≈2×%v", g, t2, t1)
		}
		if !(t4 > 1.9*t2 && t4 < 2.1*t2) {
			t.Errorf("group %d: throughput(4Y) = %v, want ≈2×%v", g, t4, t2)
		}
	}
}

func TestE4WaitingCurveMonotone(t *testing.T) {
	tbl, err := E4WaitingCurve()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, row := range tbl.Rows {
		w := parse(t, row[2])
		if i > 0 && w <= prev {
			t.Errorf("w_eng not increasing at row %d", i)
		}
		prev = w
	}
	// Blow-up near saturation: last/first ratio is large.
	first := parse(t, tbl.Rows[0][2])
	last := parse(t, tbl.Rows[len(tbl.Rows)-1][2])
	if last < 50*first {
		t.Errorf("no hyperbolic blow-up: %v vs %v", last, first)
	}
}

func TestE5PerformabilityShape(t *testing.T) {
	tbl, err := E5Performability()
	if err != nil {
		t.Fatal(err)
	}
	// W^Y ≥ w everywhere; availability increases down the rows except
	// the (2,2,3) → (3,3,3) ordering which is also increasing.
	var prevAvail float64
	for i, row := range tbl.Rows {
		availability := parse(t, row[1])
		full := parse(t, row[2])
		wy := parse(t, row[3])
		if wy < full {
			t.Errorf("row %d: W^Y %v below full-up %v", i, wy, full)
		}
		if i > 0 && availability < prevAvail {
			t.Errorf("row %d: availability decreased", i)
		}
		prevAvail = availability
	}
	// Degradation percentage shrinks from (2,2,2) to (4,4,4).
	deg222 := parse(t, tbl.Rows[1][4])
	deg444 := parse(t, tbl.Rows[4][4])
	if deg444 >= deg222 {
		t.Errorf("degradation did not shrink: %v → %v", deg222, deg444)
	}
}

func TestE6GreedyOptimal(t *testing.T) {
	tbl, err := E6Greedy()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		greedy := parse(t, row[3])
		optimal := parse(t, row[5])
		if greedy < optimal {
			t.Errorf("row %d: greedy cost %v below optimum %v", i, greedy, optimal)
		}
		if greedy > optimal+1 {
			t.Errorf("row %d: greedy cost %v above optimum+1 %v", i, greedy, optimal)
		}
		gEvals := parse(t, row[6])
		eEvals := parse(t, row[7])
		if gEvals > eEvals {
			t.Errorf("row %d: greedy used more evaluations (%v) than exhaustive (%v)", i, gEvals, eEvals)
		}
	}
}

func TestE7ValidationAccuracy(t *testing.T) {
	tbl, err := E7Validation(E7Options{Seed: 42, Horizon: 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		rel := parse(t, row[4])
		metric := row[1]
		limit := 25.0
		switch {
		case strings.HasPrefix(metric, "rho"), metric == "turnaround":
			limit = 10
		case metric == "unavailability":
			limit = 40
		}
		if rel > limit || rel < -limit {
			t.Errorf("%s %s: relative error %v%% beyond ±%v%%", row[0], metric, rel, limit)
		}
	}
}

func TestE8CalibrationAccuracy(t *testing.T) {
	tbl, err := E8Calibration(E8Options{Seed: 7, Instances: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Branch probabilities within ±0.08 of specification.
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[0], "P(") {
			continue
		}
		want := parse(t, row[1])
		got := parse(t, row[2])
		if got < want-0.08 || got > want+0.08 {
			t.Errorf("%s: estimated %v vs specified %v", row[0], got, want)
		}
	}
}

func TestAblationSeriesConverges(t *testing.T) {
	tbl, err := AblationSeries()
	if err != nil {
		t.Fatal(err)
	}
	var prevErr float64 = 1e18
	for i, row := range tbl.Rows {
		e := parse(t, row[3])
		if e > prevErr*1.0000001 {
			t.Errorf("row %d: error %v did not shrink from %v", i, e, prevErr)
		}
		prevErr = e
	}
	last := parse(t, tbl.Rows[len(tbl.Rows)-1][3])
	if last > 1e-4 {
		t.Errorf("tightest truncation error = %v", last)
	}
}

func TestAblationAvailabilityAgreement(t *testing.T) {
	tbl, err := AblationAvailabilitySolvers()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		exact := parse(t, row[2])
		pf := parse(t, row[3])
		if exact == 0 {
			continue
		}
		if rel := abs(exact-pf) / exact; rel > 1e-6 {
			t.Errorf("row %d: exact %v vs product %v", i, exact, pf)
		}
	}
}

func TestAblationRepairDiscipline(t *testing.T) {
	tbl, err := AblationRepairDiscipline()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		ratio := parse(t, row[3])
		if ratio < 1-1e-9 {
			t.Errorf("row %d: single crew better than independent (ratio %v)", i, ratio)
		}
	}
	// (1,1,1) must have ratio exactly 1 (one server ⇒ disciplines equal).
	if r := parse(t, tbl.Rows[0][3]); r < 0.999 || r > 1.001 {
		t.Errorf("(1,1,1) ratio = %v, want 1", r)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow("1", "2")
	out := tbl.Format()
	if !strings.Contains(out, "T — demo") || !strings.Contains(out, "long-column") ||
		!strings.Contains(out, "note: hello") {
		t.Errorf("format output:\n%s", out)
	}
}
