package experiments

import (
	"fmt"
	"math"

	"performa/internal/perf"
	"performa/internal/sim"
	"performa/internal/spec"
	"performa/internal/statechart"
	"performa/internal/workload"
)

// AblationPooling quantifies the paper's split-queue assumption: Section
// 4.4 models Y_x parallel M/G/1 queues, but a work-conserving dispatcher
// with one shared queue per type is an M/M/c system and waits strictly
// less. The table compares the split-queue analytic model, the pooled
// Erlang-C model, and the simulator under both dispatch policies.
func AblationPooling(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "A7",
		Title: "split queues (the paper's model) versus a shared queue per type (M/M/c)",
		Columns: []string{"rho", "c", "w split (model)", "w split (sim)",
			"w pooled (Erlang-C)", "w pooled (sim)", "pooling gain"},
	}
	env := workload.PaperEnvironment()
	st := env.Type(1) // the engine type

	for _, c := range []int{2, 4} {
		for _, rho := range []float64{0.3, 0.6, 0.85} {
			// Build a single-request workflow whose rate produces the
			// desired utilization on the engine type.
			l := rho * float64(c) / st.MeanService
			m, err := singleTypeWorkflow(env, workload.EngineType, l)
			if err != nil {
				return nil, err
			}
			split := splitWait(st, c, l)
			pooled, err := perf.MMCWaiting(c, l, st.MeanService)
			if err != nil {
				return nil, err
			}
			run := func(d sim.DispatchPolicy) (float64, error) {
				// Size the horizon for ≈150k served requests so the
				// estimate is tight regardless of the probe rate.
				horizon := 150000 / l
				res, err := sim.Run(sim.Params{
					Env: env, Models: []*spec.Model{m},
					Replicas: replicasFor(env, c),
					Seed:     seed, Horizon: horizon, Warmup: horizon / 10,
					Dispatch: d,
				})
				if err != nil {
					return 0, err
				}
				return res.Waiting[1].Mean, nil
			}
			splitSim, err := run(sim.Random)
			if err != nil {
				return nil, err
			}
			pooledSim, err := run(sim.SharedQueue)
			if err != nil {
				return nil, err
			}
			t.AddRow(f(rho), fmt.Sprintf("%d", c),
				fmt.Sprintf("%.5g", split), fmt.Sprintf("%.5g", splitSim),
				fmt.Sprintf("%.5g", pooled), fmt.Sprintf("%.5g", pooledSim),
				fmt.Sprintf("%.1fx", split/pooled))
		}
	}
	t.Notes = append(t.Notes,
		"the split-queue model is conservative for WFMSs whose dispatcher is work-conserving; the gain grows with the replica count and shrinks near saturation",
		"per-instance load partitioning for locality (the paper's §4.4 rationale) forfeits exactly this pooling gain")
	return t, nil
}

// singleTypeWorkflow builds a one-activity workflow sending one request
// per instance to the given type at total rate l.
func singleTypeWorkflow(env *spec.Environment, typeName string, l float64) (*spec.Model, error) {
	chart := statechart.NewBuilder("pool-probe").
		Initial("init").
		Activity("P", "probe").
		Final("done").
		Transition("init", "P", 1).
		Transition("P", "done", 1).
		MustBuild()
	flow := &spec.Workflow{
		Name:  "pool-probe",
		Chart: chart,
		Profiles: map[string]spec.ActivityProfile{
			"probe": {Name: "probe", MeanDuration: 2, Load: map[string]float64{typeName: 1}},
		},
		ArrivalRate: l,
	}
	return spec.Build(flow, env)
}

// splitWait is the paper's per-replica M/G/1 waiting time at total rate
// l split across c replicas.
func splitWait(st spec.ServerType, c int, l float64) float64 {
	lam := l / float64(c)
	rho := lam * st.MeanService
	if rho >= 1 {
		return inf()
	}
	return lam * st.ServiceSecondMoment / (2 * (1 - rho))
}

func inf() float64 { return math.Inf(1) }

// replicasFor puts c replicas on the engine type and one everywhere
// else (the other types carry no load in the probe workflow).
func replicasFor(env *spec.Environment, c int) []int {
	out := make([]int, env.K())
	for i := range out {
		out[i] = 1
	}
	if x, ok := env.Index(workload.EngineType); ok {
		out[x] = c
	}
	return out
}
