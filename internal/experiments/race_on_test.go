//go:build race

package experiments

// raceEnabled skips the solver-bench sweep under the race detector —
// CI covers that combination with a dedicated `go run -race` smoke step.
const raceEnabled = true
