package experiments

import (
	"fmt"

	"performa/internal/config"
	"performa/internal/perf"
	"performa/internal/spec"
	"performa/internal/workload"
)

// E12Extended exercises the full Figure 2 architecture with the Section 2
// extensions: seven server types (ORB, two engine types, two application
// types, directory, worklist), the distributed EP workflow routing
// subworkflow types to dedicated engines, and a greedy plan over the
// seven-dimensional configuration space.
func E12Extended() (*Table, error) {
	env := workload.ExtendedEnvironment()
	m, err := spec.Build(workload.EPDistributed(8), env)
	if err != nil {
		return nil, err
	}
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		return nil, err
	}
	goals := config.Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	rec, err := config.Greedy(a, goals, config.Constraints{}, plannerOptions())
	if err != nil {
		return nil, err
	}
	rep, err := a.Evaluate(rec.Config)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E12",
		Title:   "seven-type architecture (Figure 2 + directory/worklist), EPX @ 8/min: greedy plan",
		Columns: []string{"server type", "kind", "load [req/min]", "replicas", "rho", "w [min]"},
	}
	for x := 0; x < env.K(); x++ {
		st := env.Type(x)
		t.AddRow(st.Name, st.Kind.String(),
			f3(rep.TypeLoad[x]),
			fmt.Sprintf("%d", rec.Config.Replicas[x]),
			f3(rep.Utilization[x]),
			fmt.Sprintf("%.6g", rep.Waiting[x]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("recommended configuration %s, %d servers, goals w ≤ %.4g min and unavailability ≤ %.0e met",
			rec.Config, rec.Cost, goals.MaxWaiting, goals.MaxUnavailability),
		"the planner differentiates per type: failure-prone and heavily loaded types get replicas first; the model is dimension-agnostic (k is arbitrary)")
	return t, nil
}
