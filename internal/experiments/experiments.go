package experiments

import (
	"fmt"
	"math"

	"performa/internal/avail"
	"performa/internal/config"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/workload"
)

// PlannerWorkers propagates cmd/wfmsbench's -workers flag to the
// planner-driven experiments: 0 sizes the assessment worker pools to
// runtime.NumCPU(), 1 forces the sequential path. Results are identical
// either way (the planners' reductions are deterministic); only the
// wall-clock changes.
var PlannerWorkers int

// plannerOptions returns the experiments' standard planner options with
// the worker-pool setting applied.
func plannerOptions() config.Options {
	o := config.DefaultOptions()
	o.Workers = PlannerWorkers
	return o
}

// epAnalysis builds the standard analysis: the paper environment with the
// EP workflow at the given arrival rate (instances per minute).
func epAnalysis(rate float64) (*perf.Analysis, error) {
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(rate), env)
	if err != nil {
		return nil, err
	}
	return perf.NewAnalysis(env, []*spec.Model{m})
}

// mixAnalysis builds the three-workflow mix used by the heavier
// experiments.
func mixAnalysis(epRate, orderRate, loanRate float64) (*perf.Analysis, error) {
	env := workload.PaperEnvironment()
	var models []*spec.Model
	for _, w := range []*spec.Workflow{
		workload.EPWorkflow(epRate),
		workload.OrderWorkflow(orderRate),
		workload.LoanWorkflow(loanRate),
	} {
		m, err := spec.Build(w, env)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return perf.NewAnalysis(env, models)
}

// E1Availability reproduces the Section 5.2 worked example: expected
// downtime per year for the no-replication, 3-way, and asymmetric
// configurations, via both the exact joint CTMC and the product form.
func E1Availability() (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "availability worked example (Section 5.2; paper: 71 h/yr, ~10 s/yr, < 1 min/yr)",
		Columns: []string{"config", "states", "unavailability", "downtime/yr (exact)", "downtime/yr (product)",
			"paper"},
	}
	env := workload.PaperEnvironment()
	cases := []struct {
		replicas []int
		paper    string
	}{
		{[]int{1, 1, 1}, "71 hours"},
		{[]int{3, 3, 3}, "10 seconds"},
		{[]int{2, 2, 3}, "< 1 minute"},
	}
	for _, c := range cases {
		params, err := avail.ParamsFromEnvironment(env, c.replicas)
		if err != nil {
			return nil, err
		}
		exact, err := avail.Evaluate(params, avail.IndependentRepair)
		if err != nil {
			return nil, err
		}
		pf, err := avail.EvaluateProductForm(params, avail.IndependentRepair, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			perf.Config{Replicas: c.replicas}.String(),
			fmt.Sprintf("%d", stateCount(c.replicas)),
			fmt.Sprintf("%.3e", exact.Unavailability),
			humanDowntime(exact.DowntimeHoursPerYear),
			humanDowntime(pf.DowntimeHoursPerYear),
			c.paper,
		)
	}
	t.Notes = append(t.Notes,
		"failure rates: 1/month (orb), 1/week (engine), 1/day (appsrv); MTTR 10 min; independent repair")
	return t, nil
}

func stateCount(replicas []int) int {
	n := 1
	for _, y := range replicas {
		n *= y + 1
	}
	return n
}

func humanDowntime(hoursPerYear float64) string {
	switch {
	case hoursPerYear >= 1:
		return fmt.Sprintf("%.1f h", hoursPerYear)
	case hoursPerYear*60 >= 1:
		return fmt.Sprintf("%.1f min", hoursPerYear*60)
	default:
		return fmt.Sprintf("%.1f s", hoursPerYear*3600)
	}
}

// E2EPWorkflow reproduces the Figure 4 analysis of the EP workflow:
// per-state expected visits and residence times, the mean turnaround, and
// the per-server-type expected service requests.
func E2EPWorkflow() (*Table, error) {
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(1), env)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "EP workflow CTMC analysis (Figures 3/4)",
		Columns: []string{"state", "mean residence [min]", "expected visits"},
	}
	visits := m.ExpectedVisits()
	for i, name := range m.StateNames {
		if i == m.Chain.Absorbing() {
			continue
		}
		t.AddRow(name, f(m.Chain.H[i]), f(visits[i]))
	}
	r := m.ExpectedRequests()
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean turnaround R = %.4f min", m.Turnaround()),
		fmt.Sprintf("expected requests per instance: orb %.3f, engine %.3f, appsrv %.3f", r[0], r[1], r[2]),
		"figure 4's annotations are fictitious per the paper; these values derive from workload.EPDurations / EPBranchProbs")
	return t, nil
}

// E3Throughput sweeps the arrival rate and the replication degree and
// reports per-type loads, the bottleneck, and the maximum sustainable
// throughput (Section 4.3).
func E3Throughput() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "total load and maximum sustainable throughput (Section 4.3), EP+Order+Loan mix",
		Columns: []string{"mix rate [1/min]", "Y", "l_orb", "l_eng", "l_app",
			"rho_max", "bottleneck", "max throughput [wf/min]"},
	}
	env := workload.PaperEnvironment()
	for _, rate := range []float64{1, 5, 10, 20} {
		a, err := mixAnalysis(rate*0.5, rate*0.3, rate*0.2)
		if err != nil {
			return nil, err
		}
		for _, y := range []int{1, 2, 4} {
			rep, err := a.Evaluate(perf.Config{Replicas: []int{y, y, y}})
			if err != nil {
				return nil, err
			}
			var rhoMax float64
			for _, rho := range rep.Utilization {
				if rho > rhoMax {
					rhoMax = rho
				}
			}
			t.AddRow(
				f(rate), fmt.Sprintf("%d", y),
				f3(rep.TypeLoad[0]), f3(rep.TypeLoad[1]), f3(rep.TypeLoad[2]),
				f3(rhoMax),
				env.Type(rep.Bottleneck).Name,
				f3(rep.MaxWorkflowThroughput),
			)
		}
	}
	t.Notes = append(t.Notes, "max throughput scales linearly in Y; the bottleneck is the type with the largest b_x·l_x")
	return t, nil
}

// E4WaitingCurve reports the M/G/1 waiting-time curve (Section 4.4)
// including a co-located variant.
func E4WaitingCurve() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "M/G/1 waiting time versus utilization (Section 4.4)",
		Columns: []string{"rho", "w_orb [min]", "w_eng [min]", "w_app [min]"},
	}
	env := workload.PaperEnvironment()
	rhos := []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	curves := make([][]float64, env.K())
	for x := 0; x < env.K(); x++ {
		curves[x] = perf.WaitingCurve(env.Type(x), rhos)
	}
	for i, rho := range rhos {
		t.AddRow(f(rho), fmt.Sprintf("%.5g", curves[0][i]), fmt.Sprintf("%.5g", curves[1][i]), fmt.Sprintf("%.5g", curves[2][i]))
	}

	// Co-location example: engine and appsrv on one computer.
	a, err := epAnalysis(5)
	if err != nil {
		return nil, err
	}
	sep, err := a.Evaluate(perf.Config{Replicas: []int{1, 1, 1}})
	if err != nil {
		return nil, err
	}
	colo, err := a.Evaluate(perf.Config{Replicas: []int{1, 1, 1}, Colocated: [][]int{{1, 2}}})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"hyperbolic blow-up towards rho → 1, the paper's responsiveness indicator",
		fmt.Sprintf("co-location (EP @ 5/min, Y=(1,1,1)): separate w_eng=%.4g w_app=%.4g; engine+appsrv on one computer: w=%.4g (util %.3f)",
			sep.Waiting[1], sep.Waiting[2], colo.Waiting[1], colo.Utilization[1]))
	return t, nil
}

// E5Performability compares the failure-free waiting times with the
// performability metric W^Y across configurations (Section 6).
func E5Performability() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "performability W^Y versus failure-free waiting (Section 6), EP @ 5/min",
		Columns: []string{"config", "availability", "w full-up [min]", "W^Y [min]",
			"degradation [%]", "degraded-state prob"},
	}
	a, err := epAnalysis(5)
	if err != nil {
		return nil, err
	}
	for _, y := range [][]int{{1, 1, 1}, {2, 2, 2}, {2, 2, 3}, {3, 3, 3}, {4, 4, 4}} {
		res, err := performability.Evaluate(a, perf.Config{Replicas: y},
			performability.Options{Policy: performability.ExcludeDown})
		if err != nil {
			return nil, err
		}
		full := maxOf(res.FullUpWaiting)
		wy := res.MaxWaiting()
		deg := 0.0
		if full > 0 {
			deg = (wy - full) / full * 100
		}
		t.AddRow(
			perf.Config{Replicas: y}.String(),
			fmt.Sprintf("%.8f", res.Availability),
			fmt.Sprintf("%.5g", full),
			fmt.Sprintf("%.5g", wy),
			f3(deg),
			fmt.Sprintf("%.3e", res.DegradationShare),
		)
	}
	t.Notes = append(t.Notes,
		"ExcludeDown policy: W^Y conditions on operational states; downtime is reported by the availability column",
		"W^Y > w always; the gap shrinks with replication (degraded states get rarer and milder)")
	return t, nil
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// E6Greedy sweeps goals and compares the greedy heuristic with the
// exhaustive optimum (Section 7.2).
func E6Greedy() (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "greedy versus exhaustive minimum-cost configuration (Section 7.2), EP+Order+Loan mix @ 6/min total",
		Columns: []string{"goal w_max [min]", "goal unavail", "greedy config", "greedy cost",
			"exhaustive config", "optimal cost", "greedy evals", "exhaustive evals"},
	}
	a, err := mixAnalysis(3, 2, 1)
	if err != nil {
		return nil, err
	}
	opts := plannerOptions()
	cases := []config.Goals{
		{MaxUnavailability: 1e-4},
		{MaxUnavailability: 1.5e-6},
		{MaxWaiting: 0.002, MaxUnavailability: 1e-4},
		{MaxWaiting: 0.001, MaxUnavailability: 1e-5},
		{MaxWaiting: 0.0005, MaxUnavailability: 1e-6},
	}
	for _, goals := range cases {
		g, err := config.Greedy(a, goals, config.Constraints{}, opts)
		if err != nil {
			return nil, err
		}
		e, err := config.Exhaustive(a, goals, config.Constraints{MaxReplicas: []int{8, 8, 8}}, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			f(goals.MaxWaiting), fmt.Sprintf("%.1e", goals.MaxUnavailability),
			g.Config.String(), fmt.Sprintf("%d", g.Cost),
			e.Config.String(), fmt.Sprintf("%d", e.Cost),
			fmt.Sprintf("%d", g.Evaluations), fmt.Sprintf("%d", e.Evaluations),
		)
	}
	t.Notes = append(t.Notes, "the greedy heuristic reaches the optimal cost on every goal here with far fewer evaluations")
	return t, nil
}
