package experiments

import (
	"strings"
	"testing"
)

func TestE9DistributionAccuracy(t *testing.T) {
	tbl, err := E9Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var prev float64
	for i, row := range tbl.Rows {
		analytic := parse(t, row[1])
		mc := parse(t, row[2])
		erl := parse(t, row[3])
		// Analytic CDF vs Monte Carlo within 2%.
		if rel := abs(analytic-mc) / analytic; rel > 0.02 {
			t.Errorf("q=%s: analytic %v vs MC %v (%.1f%%)", row[0], analytic, mc, rel*100)
		}
		// Quantiles increase.
		if analytic <= prev {
			t.Errorf("row %d: quantile not increasing", i)
		}
		prev = analytic
		// Erlang-4 tail percentiles (q ≥ 0.9) are lighter.
		if row[0] != "0.5" && erl >= analytic {
			t.Errorf("q=%s: Erlang-4 percentile %v not below exponential %v", row[0], erl, analytic)
		}
	}
}

func TestE10ScalabilityAgreement(t *testing.T) {
	tbl, err := E10Scalability()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		if row[4] != "yes" && row[4] != "-" {
			t.Errorf("row %d: solvers disagree: %s", i, row[4])
		}
	}
	if len(tbl.Rows) < 4 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestE11PlannersOptimality(t *testing.T) {
	tbl, err := E11Planners()
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in groups of four (greedy, b&b, annealing, exhaustive);
	// exhaustive is last and optimal within each group.
	for g := 0; g+3 < len(tbl.Rows); g += 4 {
		optimal := parse(t, tbl.Rows[g+3][4])
		for off, slack := range map[int]float64{0: 1, 1: 0, 2: 1} { // greedy +1, b&b exact, annealing +1
			cost := parse(t, tbl.Rows[g+off][4])
			if cost > optimal+slack {
				t.Errorf("group %d planner %s: cost %v vs optimal %v", g, tbl.Rows[g+off][2], cost, optimal)
			}
			if cost < optimal {
				t.Errorf("group %d planner %s: cost %v below the optimum %v", g, tbl.Rows[g+off][2], cost, optimal)
			}
		}
		// Branch-and-bound beats exhaustive on evaluations.
		bbEvals := parse(t, tbl.Rows[g+1][5])
		exEvals := parse(t, tbl.Rows[g+3][5])
		if bbEvals >= exEvals {
			t.Errorf("group %d: b&b evaluations %v not below exhaustive %v", g, bbEvals, exEvals)
		}
	}
}

func TestAblationHeterogeneousInvariants(t *testing.T) {
	tbl, err := AblationHeterogeneous()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Same total capacity ⇒ same utilization and throughput everywhere.
	rho0 := parse(t, tbl.Rows[0][2])
	tp0 := parse(t, tbl.Rows[0][4])
	for i, row := range tbl.Rows {
		if abs(parse(t, row[2])-rho0) > 1e-9 {
			t.Errorf("row %d: rho differs", i)
		}
		if abs(parse(t, row[4])-tp0) > 1e-6 {
			t.Errorf("row %d: throughput differs", i)
		}
	}
	// Mean waiting ∝ replica count: 4 → w, 2 → w/2, 1 → w/4, 3 → 3w/4.
	w4 := parse(t, tbl.Rows[0][3])
	if got := parse(t, tbl.Rows[1][3]); abs(got-w4/2)/w4 > 1e-6 {
		t.Errorf("2-replica fleet wait %v, want %v", got, w4/2)
	}
	if got := parse(t, tbl.Rows[2][3]); abs(got-w4/4)/w4 > 1e-6 {
		t.Errorf("1-replica fleet wait %v, want %v", got, w4/4)
	}
	if got := parse(t, tbl.Rows[3][3]); abs(got-3*w4/4)/w4 > 1e-6 {
		t.Errorf("3-replica fleet wait %v, want %v", got, 3*w4/4)
	}
	if !strings.Contains(tbl.Notes[1], "COUNT") {
		t.Error("note lost")
	}
}
