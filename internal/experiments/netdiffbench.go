package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"performa/internal/spec"
	"performa/internal/statechart"
	"performa/internal/wfjson"
	"performa/internal/wfnet"
)

// NetDiffBenchRow is one measured collapse-vs-net comparison of E20, the
// record format of BENCH_netdiff.json: the paper's max-of-means collapse
// next to the free-choice net oracle's exact expected execution time.
type NetDiffBenchRow struct {
	// Case is "fork-join" for the parametric sweep, "corpus" for an
	// imported-workflow corpus system.
	Case string `json:"case"`
	// System is the corpus file's base name ("synthetic" for the sweep).
	System string `json:"system"`
	// Workflow is the workflow's name within the system.
	Workflow string `json:"workflow"`
	// Fan is the AND fan-out k of the synthetic fork-join (0 for corpus
	// rows, whose structure varies).
	Fan int `json:"fan,omitempty"`
	// Stages is the Erlang stage count of each synthetic branch; the
	// branch coefficient of variation is 1/sqrt(stages).
	Stages int `json:"stages,omitempty"`
	// BranchCV is that coefficient of variation (synthetic rows only).
	BranchCV float64 `json:"branch_cv,omitempty"`
	// Collapsed is the production collapse's mean turnaround
	// (max-of-means at every parallel state).
	Collapsed float64 `json:"collapsed"`
	// Net is the net oracle's exact expected execution time.
	Net float64 `json:"net"`
	// BiasRel is the collapse's relative underestimate,
	// (net − collapsed)/net — nonnegative for every workflow by the
	// one-sided Jensen ordering.
	BiasRel float64 `json:"bias_rel"`
	// Markings is the size of the net's reachable marking graph.
	Markings int `json:"markings"`
	// WallMS is the net-oracle solve time (translation included).
	WallMS float64 `json:"wall_ms"`
	// RefMean is the closed form d·H_k for exponential branches
	// (stages = 1): the expected maximum of k iid exponentials of mean d
	// is d times the k-th harmonic number. 0 where no closed form
	// applies.
	RefMean float64 `json:"ref_mean,omitempty"`
	// RefErr is the net oracle's relative error against RefMean.
	RefErr float64 `json:"ref_err,omitempty"`
}

// netDiffCases returns the parametric grid as explicit {fan, stages}
// pairs. The marking graph of a k-way fork of Erlang(s) branches holds
// roughly (s+1)^k tangible markings, so the corner combining high
// fan-out with many stages is excluded rather than silently truncated —
// the grid keeps every cell under the process state budget while still
// reaching k = 16 (exponential) and s = 16 (near-deterministic, k ≤ 4).
// The reduced grid keeps the CI smoke run in about a second.
func netDiffCases(reduced bool) [][2]int {
	if reduced {
		return [][2]int{{2, 1}, {2, 4}, {4, 1}, {4, 4}, {8, 1}}
	}
	return [][2]int{
		{2, 1}, {2, 4}, {2, 16},
		{4, 1}, {4, 4}, {4, 16},
		{8, 1}, {8, 4},
		{16, 1},
	}
}

// NetDiffBench runs the E20 collapse-error sweep: the synthetic
// fork-join grid quantifies the max-of-means bias as a function of
// fan-out and branch variability (with the d·H_k closed form pinning
// the exponential column), and every corpus system is measured so the
// envelope covers real workflow shapes. dir is the corpus directory
// (skipped if it has no systems and the sweep alone is returned);
// reduced selects the CI smoke grid.
func NetDiffBench(dir string, reduced bool) ([]NetDiffBenchRow, *Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "parallel-collapse bias: max-of-means turnaround vs free-choice net oracle",
		Columns: []string{"case", "system", "workflow", "fan", "stages", "cv", "collapsed", "net", "bias", "markings", "wall", "ref d·H_k", "ref err"},
	}
	var rows []NetDiffBenchRow

	const d = 1.0
	for _, c := range netDiffCases(reduced) {
		k, s := c[0], c[1]
		row, err := netDiffForkJoinRow(k, s, d)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: netdiff fork-join k=%d stages=%d: %w", k, s, err)
		}
		rows = append(rows, row)
		addNetDiffRow(t, row)
	}

	corpus, err := netDiffCorpusRows(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range corpus {
		rows = append(rows, row)
		addNetDiffRow(t, row)
	}

	t.Notes = append(t.Notes,
		"bias = (net − collapsed)/net: the collapse's relative underestimate, ≥ 0 by the Jensen ordering",
		"synthetic branches are Erlang(stages) of mean 1; cv = 1/sqrt(stages)",
		"ref: E[max of k iid exponentials of mean d] = d·H_k, closed form for the stages = 1 column",
		"the high-fan × high-stage corner (~(stages+1)^fan markings) is excluded, not truncated: k = 8 stops at 4 stages, k = 16 at 1",
		"corpus rows measure every workflow of every imported system; fan/stages vary within, so those columns are blank")
	return rows, t, nil
}

// netDiffForkJoinRow measures one synthetic fork-join: k parallel
// branches, each a single Erlang(stages) activity of mean d.
func netDiffForkJoinRow(k, stages int, d float64) (NetDiffBenchRow, error) {
	chart, profiles := forkJoinChart(k, stages, d)
	row := NetDiffBenchRow{
		Case:     "fork-join",
		System:   "synthetic",
		Workflow: chart.Name,
		Fan:      k,
		Stages:   stages,
		BranchCV: 1 / math.Sqrt(float64(stages)),
	}
	col, err := wfnet.CollapsedReference(chart, profiles)
	if err != nil {
		return row, err
	}
	t0 := time.Now()
	net, err := wfnet.FromChart(chart, profiles)
	if err != nil {
		return row, err
	}
	res, err := wfnet.ExpectedDefault(net)
	if err != nil {
		return row, err
	}
	row.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	row.Collapsed = col
	row.Net = res.Mean
	row.Markings = res.Markings
	if res.Mean > 0 {
		row.BiasRel = (res.Mean - col) / res.Mean
	}
	if stages == 1 {
		row.RefMean = d * harmonic(k)
		row.RefErr = relErr(row.RefMean, res.Mean)
	}
	return row, nil
}

// forkJoinChart builds the statechart init → AND(k branches) → final
// with every branch a single activity of mean d and the given Erlang
// stage count.
func forkJoinChart(k, stages int, d float64) (*statechart.Chart, map[string]spec.ActivityProfile) {
	par := &statechart.State{Name: "par"}
	for b := 0; b < k; b++ {
		name := fmt.Sprintf("branch%d", b)
		par.Subcharts = append(par.Subcharts, &statechart.Chart{
			Name: name,
			States: map[string]*statechart.State{
				"init": {Name: "init"},
				"work": {Name: "work", Activity: "act"},
				"fin":  {Name: "fin"},
			},
			Initial: "init",
			Final:   "fin",
			Transitions: []*statechart.Transition{
				{From: "init", To: "work", Prob: 1},
				{From: "work", To: "fin", Prob: 1},
			},
		})
	}
	chart := &statechart.Chart{
		Name: fmt.Sprintf("forkjoin-k%d-s%d", k, stages),
		States: map[string]*statechart.State{
			"init": {Name: "init"}, "par": par, "final": {Name: "final"},
		},
		Initial: "init",
		Final:   "final",
		Transitions: []*statechart.Transition{
			{From: "init", To: "par", Prob: 1},
			{From: "par", To: "final", Prob: 1},
		},
	}
	profiles := map[string]spec.ActivityProfile{
		"act": {Name: "act", MeanDuration: d, DurationStages: stages},
	}
	return chart, profiles
}

// netDiffCorpusRows measures the collapse bias of every workflow of
// every corpus system. A missing corpus directory yields no rows rather
// than an error, so the synthetic sweep stands alone.
func netDiffCorpusRows(dir string) ([]NetDiffBenchRow, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "systems", "*.wfjson"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var rows []NetDiffBenchRow
	for _, path := range paths {
		system := filepath.Base(path)
		system = system[:len(system)-len(filepath.Ext(system))]
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, flows, err := wfjson.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: netdiff corpus system %s: %w", system, err)
		}
		for _, flow := range flows {
			row := NetDiffBenchRow{Case: "corpus", System: system, Workflow: flow.Name}
			col, err := wfnet.CollapsedReference(flow.Chart, flow.Profiles)
			if err != nil {
				return nil, fmt.Errorf("experiments: netdiff corpus system %s workflow %s: %w", system, flow.Name, err)
			}
			t0 := time.Now()
			net, err := wfnet.FromWorkflow(flow)
			if err != nil {
				return nil, fmt.Errorf("experiments: netdiff corpus system %s workflow %s: %w", system, flow.Name, err)
			}
			res, err := wfnet.ExpectedDefault(net)
			if err != nil {
				return nil, fmt.Errorf("experiments: netdiff corpus system %s workflow %s: %w", system, flow.Name, err)
			}
			row.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
			row.Collapsed = col
			row.Net = res.Mean
			row.Markings = res.Markings
			if res.Mean > 0 {
				row.BiasRel = (res.Mean - col) / res.Mean
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// addNetDiffRow renders one row into the E20 table.
func addNetDiffRow(t *Table, row NetDiffBenchRow) {
	fan, stages, cv := "-", "-", "-"
	if row.Fan > 0 {
		fan = fmt.Sprintf("%d", row.Fan)
		stages = fmt.Sprintf("%d", row.Stages)
		cv = fmt.Sprintf("%.2f", row.BranchCV)
	}
	ref, refErr := "-", "-"
	if row.RefMean > 0 {
		ref = fmt.Sprintf("%.4f", row.RefMean)
		refErr = fmt.Sprintf("%.1e", row.RefErr)
	}
	t.AddRow(row.Case, row.System, row.Workflow, fan, stages, cv,
		fmt.Sprintf("%.4f", row.Collapsed), fmt.Sprintf("%.4f", row.Net),
		fmt.Sprintf("%.1f%%", 100*row.BiasRel), fmt.Sprintf("%d", row.Markings),
		fmtWall(row.WallMS), ref, refErr)
}

// harmonic returns the k-th harmonic number H_k = Σ_{i=1..k} 1/i.
func harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}
