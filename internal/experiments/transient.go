package experiments

import (
	"fmt"

	"performa/internal/avail"
	"performa/internal/workload"
)

// AblationTransient traces the time-dependent unavailability U(t) of the
// paper-example configurations from a cold (all-up) start, showing how
// quickly the steady-state number the paper reports becomes meaningful.
func AblationTransient() (*Table, error) {
	t := &Table{
		ID:      "A6",
		Title:   "transient unavailability U(t) from an all-up start (paper environment)",
		Columns: []string{"t [min]", "U(t) at (1,1,1)", "U(t) at (2,2,3)"},
	}
	env := workload.PaperEnvironment()
	times := []float64{0, 1, 5, 10, 30, 60, 240, 1440, 100000}
	curves := make([][]float64, 2)
	for ci, y := range [][]int{{1, 1, 1}, {2, 2, 3}} {
		params, err := avail.ParamsFromEnvironment(env, y)
		if err != nil {
			return nil, err
		}
		u, err := avail.TransientUnavailability(params, avail.IndependentRepair, times)
		if err != nil {
			return nil, err
		}
		curves[ci] = u
	}
	for i, tt := range times {
		label := f(tt)
		if tt == 100000 {
			label = "steady"
		}
		t.AddRow(label, fmt.Sprintf("%.3e", curves[0][i]), fmt.Sprintf("%.3e", curves[1][i]))
	}
	t.Notes = append(t.Notes,
		"the relaxation time is set by the 10-minute repairs: within an hour of a cold start the steady-state unavailability is the right summary",
		"the replicated configuration approaches a steady state four orders of magnitude lower at the same speed")
	return t, nil
}
