package experiments

import (
	"testing"
)

// TestSolverBenchReduced runs the CI-sized E16 sweep and sanity-checks
// the rows: every production solver converges with a tiny relative
// error against the closed form, divergence is only ever recorded for
// the diagnostic solvers, and the table mirrors the row count.
func TestSolverBenchReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("solver bench sweep in -short mode")
	}
	if raceEnabled {
		t.Skip("solver bench sweep under the race detector (covered by the CI smoke step)")
	}
	rows, tbl, err := SolverBench(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if tbl.ID != "E16" {
		t.Fatalf("table id %q, want E16", tbl.ID)
	}
	if len(tbl.Rows) != len(rows) {
		t.Fatalf("table has %d rows, JSON has %d", len(tbl.Rows), len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Solver] = true
		if r.States <= 0 || r.NNZ < r.States {
			t.Fatalf("%s/%s: implausible shape states=%d nnz=%d", r.Config, r.Solver, r.States, r.NNZ)
		}
		if r.Error != "" {
			if r.Solver != "jacobi" && r.Solver != "power" {
				t.Fatalf("%s/%s: production solver recorded error %q", r.Config, r.Solver, r.Error)
			}
			continue
		}
		if r.RelErr > 1e-6 {
			t.Fatalf("%s/%s: rel err %v vs closed form", r.Config, r.Solver, r.RelErr)
		}
		if r.Unavail <= 0 || r.Unavail >= 1 {
			t.Fatalf("%s/%s: unavailability %v out of range", r.Config, r.Solver, r.Unavail)
		}
		if r.WallMS < 0 {
			t.Fatalf("%s/%s: negative wall time", r.Config, r.Solver)
		}
	}
	for _, solver := range []string{"dense", "gauss_seidel", "bicgstab", "product_form"} {
		if !seen[solver] {
			t.Fatalf("sweep never ran %s", solver)
		}
	}
}

// TestJointChainSize pins the closed-form state/nnz count against a
// hand-computed example: Y = (1, 2) has 6 states; type 1 contributes
// 3·1 failure arcs + 3·1 repair arcs, type 2 contributes 2·2 + 2·2.
func TestJointChainSize(t *testing.T) {
	params := solverBenchParams([]int{1, 2})
	n, nnz := jointChainSize(params)
	if n != 6 {
		t.Fatalf("states = %d, want 6", n)
	}
	if want := 6 + 2*3*1 + 2*2*2; nnz != want {
		t.Fatalf("nnz = %d, want %d", nnz, want)
	}
}
