package experiments

import "testing"

func TestAblationTransientShape(t *testing.T) {
	tbl, err := AblationTransient()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Starts at zero, ends at the E1 steady-state values.
	if parse(t, tbl.Rows[0][1]) != 0 || parse(t, tbl.Rows[0][2]) != 0 {
		t.Error("U(0) not zero")
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if u := parse(t, last[1]); u < 8.0e-3 || u > 8.2e-3 {
		t.Errorf("steady U(1,1,1) = %v, want ≈8.11e-3 (E1)", u)
	}
	if u := parse(t, last[2]); u < 1.3e-6 || u > 1.4e-6 {
		t.Errorf("steady U(2,2,3) = %v, want ≈1.364e-6 (E1)", u)
	}
	// Monotone non-decreasing columns.
	for col := 1; col <= 2; col++ {
		var prev float64
		for i, row := range tbl.Rows {
			v := parse(t, row[col])
			if v < prev-1e-15 {
				t.Errorf("column %d not monotone at row %d", col, i)
			}
			prev = v
		}
	}
}
