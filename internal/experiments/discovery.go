package experiments

import (
	"context"
	"fmt"

	"performa/internal/calibrate"
	"performa/internal/engine"
	"performa/internal/spec"
	"performa/internal/workload"
)

// E13Discovery exercises the strongest form of Section 3.2's audit-trail
// calibration: the loan workflow runs on the mini-WFMS, and the workflow
// specification — control-flow graph, branch probabilities, activity
// durations, load matrix, arrival rate — is reconstructed from the trail
// alone, with no designer model. The table compares the discovered model
// against the ground truth.
func E13Discovery(seed uint64) (*Table, error) {
	env := workload.PaperEnvironment()
	truth := workload.LoanWorkflow(1)
	rt := engine.New(env, engine.Options{
		TimeScale:  0.0025,
		Seed:       seed,
		AppWorkers: map[string]int{workload.AppType: 256},
		Users:      256,
		ServerReplicas: map[string]int{
			workload.ORB: 256, workload.EngineType: 256, workload.AppType: 256,
		},
	})
	const instances = 500
	done, err := rt.RunInstances(context.Background(), truth, instances, 1)
	if err != nil {
		return nil, err
	}
	discovered, err := calibrate.DiscoverWorkflow(rt.Trail(), "Loan", env)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("workflow discovery from the audit trail of %d executed instances (no designer model)", done),
		Columns: []string{"parameter", "ground truth", "discovered"},
	}
	t.AddRow("execution states", fmt.Sprintf("%d", countActivityStates(truth)),
		fmt.Sprintf("%d", countActivityStates(discovered)))
	for _, tr := range truth.Chart.Outgoing("Score_S") {
		var got float64
		for _, dr := range discovered.Chart.Outgoing("Score_S") {
			if dr.To == tr.To {
				got = dr.Prob
			}
		}
		t.AddRow("P(Score→"+tr.To+")", f3(tr.Prob), f3(got))
	}
	for _, act := range []string{"LoanApplication", "ManualReview", "Disburse"} {
		t.AddRow("duration("+act+") [min]", f3(truth.Profiles[act].MeanDuration),
			f3(discovered.Profiles[act].MeanDuration))
	}
	t.AddRow("engine load of CreditScoring [req]",
		f3(truth.Profiles["CreditScoring"].Load[workload.EngineType]),
		f3(discovered.Profiles["CreditScoring"].Load[workload.EngineType]))

	truthModel, err := spec.Build(truth, env)
	if err != nil {
		return nil, err
	}
	discModel, err := spec.Build(discovered, env)
	if err != nil {
		return nil, err
	}
	t.AddRow("mean turnaround [min]", f3(truthModel.Turnaround()), f3(discModel.Turnaround()))
	rt1, rt2 := truthModel.ExpectedRequests(), discModel.ExpectedRequests()
	t.AddRow("engine requests/instance", f3(rt1[1]), f3(rt2[1]))
	t.Notes = append(t.Notes,
		"discovery rebuilds the entire specification from StateEntered/StateLeft/ActivityStarted/ServiceRequest records; only flat workflows are reconstructable (nested subcharts lack parent linkage in the trail)")
	return t, nil
}

func countActivityStates(w *spec.Workflow) int {
	n := 0
	for _, s := range w.Chart.States {
		if s.Activity != "" {
			n++
		}
	}
	return n
}
