package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"performa/internal/ctmc"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/wfcommons"
	"performa/internal/wfjson"
)

// CorpusBenchRow is one measured performability assessment of E17, the
// record format of BENCH_corpus.json: one imported-workflow corpus
// system evaluated end to end under one steady-state solver strategy.
type CorpusBenchRow struct {
	// System is the corpus file's base name without extension.
	System string `json:"system"`
	// WFStates is the total CTMC state count across the system's
	// workflow models (Erlang stage expansion included).
	WFStates int `json:"wf_states"`
	// Types is the number of server types K.
	Types int `json:"types"`
	// Solver names the steady-state strategy backing the availability
	// chain ("dense", "gauss_seidel", "bicgstab").
	Solver string `json:"solver"`
	// WallMS is the performability evaluation time (model build
	// excluded; the build is shared across solvers).
	WallMS float64 `json:"wall_ms"`
	// MaxWaiting is W^Y's largest per-type entry under the
	// exclude-down policy.
	MaxWaiting float64 `json:"max_waiting"`
	// Unavail is 1 minus the configuration's steady-state availability.
	Unavail float64 `json:"unavail"`
	// RelErr is the relative error of MaxWaiting against the dense
	// solver's result on the same system (0 for the dense row itself).
	RelErr float64 `json:"rel_err"`
}

// corpusBenchSolvers is the E17 strategy sweep: the dense direct solve
// is the reference; the two production sparse iterative strategies must
// reproduce it on every corpus system.
var corpusBenchSolvers = []string{"dense", "gauss_seidel", "bicgstab"}

// CorpusBench runs the E17 sweep: every imported-workflow system under
// dir/systems/ is assessed through the full performability stack
// (Section 6) once per steady-state solver strategy. limit > 0 caps the
// number of systems (for smoke runs); 0 means all.
func CorpusBench(dir string, limit int) ([]CorpusBenchRow, *Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "systems", "*.wfjson"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("experiments: no corpus systems under %s", filepath.Join(dir, "systems"))
	}
	if limit > 0 && len(paths) > limit {
		paths = paths[:limit]
	}

	t := &Table{
		ID:      "E17",
		Title:   "solver strategies on the imported-workflow corpus (performability, exclude-down)",
		Columns: []string{"system", "wf states", "types", "solver", "wall", "max waiting", "unavail", "rel err"},
	}
	var rows []CorpusBenchRow
	for _, path := range paths {
		system := filepath.Base(path)
		system = system[:len(system)-len(filepath.Ext(system))]
		a, wfStates, err := loadCorpusAnalysis(path)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: corpus system %s: %w", system, err)
		}
		cfg := perf.Config{Replicas: wfcommons.Replicas(a.Env())}
		var ref float64
		for _, solver := range corpusBenchSolvers {
			strategy, err := ctmc.ParseSolverStrategy(solver)
			if err != nil {
				return nil, nil, err
			}
			t0 := time.Now()
			res, err := performability.Evaluate(a, cfg, performability.Options{
				Policy: performability.ExcludeDown,
				Solver: strategy,
			})
			wall := float64(time.Since(t0)) / float64(time.Millisecond)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: corpus system %s, solver %s: %w", system, solver, err)
			}
			row := CorpusBenchRow{
				System:     system,
				WFStates:   wfStates,
				Types:      a.Env().K(),
				Solver:     solver,
				WallMS:     wall,
				MaxWaiting: res.MaxWaiting(),
				Unavail:    1 - res.Availability,
			}
			if solver == "dense" {
				ref = row.MaxWaiting
			} else {
				row.RelErr = relErr(ref, row.MaxWaiting)
			}
			rows = append(rows, row)
			t.AddRow(row.System, fmt.Sprintf("%d", row.WFStates), fmt.Sprintf("%d", row.Types),
				row.Solver, fmtWall(row.WallMS), fmt.Sprintf("%.4f", row.MaxWaiting),
				fmt.Sprintf("%.3e", row.Unavail), fmt.Sprintf("%.1e", row.RelErr))
		}
	}
	t.Notes = append(t.Notes,
		"every system uses the corpus replica vector (2 per type) and its converted MTTF/MTTR rates",
		"waiting under the exclude-down policy: expectation over operational, non-saturated states",
		"rel err: MaxWaiting against the dense direct solve of the same system",
		"wall time covers the performability evaluation; the workflow model build is shared")
	return rows, t, nil
}

// loadCorpusAnalysis decodes one corpus wfjson file and builds the
// performance analysis all E17 solver rows share.
func loadCorpusAnalysis(path string) (*perf.Analysis, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	env, flows, err := wfjson.Decode(f)
	if err != nil {
		return nil, 0, err
	}
	models := make([]*spec.Model, len(flows))
	wfStates := 0
	for i, flow := range flows {
		m, err := spec.Build(flow, env)
		if err != nil {
			return nil, 0, err
		}
		models[i] = m
		wfStates += m.Chain.N()
	}
	a, err := perf.NewAnalysis(env, models)
	if err != nil {
		return nil, 0, err
	}
	return a, wfStates, nil
}
