package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"performa/internal/config"
	"performa/internal/ctmc"
	"performa/internal/dist"
	"performa/internal/linalg"
	"performa/internal/perf"
	"performa/internal/spec"
	"performa/internal/workload"
)

// E9Distribution computes turnaround-time percentiles of the EP workflow
// via the uniformized transient analysis — an extension beyond the
// paper's mean-value results — validated against Monte-Carlo sampling of
// the same chain, and contrasted with an Erlang-4 phase-type variant of
// the activity durations (same means, lighter tail).
func E9Distribution() (*Table, error) {
	env := workload.PaperEnvironment()
	expModel, err := spec.Build(workload.EPWorkflow(1), env)
	if err != nil {
		return nil, err
	}
	erlWF := workload.EPWorkflow(1)
	for name, p := range erlWF.Profiles {
		p.DurationStages = 4
		erlWF.Profiles[name] = p
	}
	erlModel, err := spec.Build(erlWF, env)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E9",
		Title:   "EP turnaround-time percentiles (uniformization; extension beyond the paper's means)",
		Columns: []string{"quantile", "analytic exp [min]", "Monte Carlo exp [min]", "analytic Erlang-4 [min]"},
	}
	rng := dist.NewRNG(42)
	const samples = 60000
	sorted := make([]float64, samples)
	for i := range sorted {
		v, err := ctmc.SampleTurnaround(expModel.Chain, rng, 0)
		if err != nil {
			return nil, err
		}
		sorted[i] = v
	}
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		analytic, err := expModel.TurnaroundQuantile(q)
		if err != nil {
			return nil, err
		}
		erl, err := erlModel.TurnaroundQuantile(q)
		if err != nil {
			return nil, err
		}
		mc := sorted[int(q*float64(samples))]
		t.AddRow(f(q), fmt.Sprintf("%.3f", analytic), fmt.Sprintf("%.3f", mc), fmt.Sprintf("%.3f", erl))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean turnaround is %.3f min for both variants (phase expansion preserves all mean-value metrics)", expModel.Turnaround()),
		"Erlang-4 activity durations cut the tail percentiles: the distribution, not the mean, is what a percentile SLA buys")
	return t, nil
}

// E10Scalability measures dense versus sparse workflow-chain solvers on
// synthetic chains of growing size, the scalability story behind the
// hand-built Markov machinery.
func E10Scalability() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "dense versus sparse workflow-chain solvers (synthetic forward chains)",
		Columns: []string{"states", "turnaround (sparse)", "dense solve", "sparse solve", "agree"},
	}
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{100, 500, 1000, 2500} {
		big := syntheticBigChain(n, rng)
		if err := big.Validate(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		sparseR, err := big.MeanTurnaround()
		if err != nil {
			return nil, err
		}
		sparseD := time.Since(t0)

		denseCell := "-"
		agree := "-"
		if n <= 1000 { // dense is O(n²) memory, O(n·iters) GS sweeps
			dense := bigToDense(big)
			t1 := time.Now()
			denseR, err := ctmc.MeanTurnaround(dense)
			if err != nil {
				return nil, err
			}
			denseCell = time.Since(t1).Round(time.Microsecond).String()
			if abs(denseR-sparseR) < 1e-6*(1+denseR) {
				agree = "yes"
			} else {
				agree = fmt.Sprintf("NO (%v vs %v)", denseR, sparseR)
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", sparseR),
			denseCell, sparseD.Round(time.Microsecond).String(), agree)
	}
	t.Notes = append(t.Notes,
		"sparse Gauss-Seidel scales with the transition count (≈2 per state here); the dense path scales with n² per sweep")
	return t, nil
}

func syntheticBigChain(n int, rng *rand.Rand) *ctmc.BigChain {
	c := &ctmc.BigChain{Arcs: make([][]ctmc.Arc, n+1), H: linalg.NewVector(n + 1)}
	for i := 0; i < n; i++ {
		c.H[i] = 0.5 + rng.Float64()
		next := i + 1
		switch {
		case i > 1 && rng.Float64() < 0.2:
			c.Arcs[i] = []ctmc.Arc{{To: next, Prob: 0.8}, {To: i - 1, Prob: 0.2}}
		case i+2 <= n && rng.Float64() < 0.3:
			c.Arcs[i] = []ctmc.Arc{{To: next, Prob: 0.6}, {To: i + 2, Prob: 0.4}}
		default:
			c.Arcs[i] = []ctmc.Arc{{To: next, Prob: 1}}
		}
	}
	return c
}

func bigToDense(big *ctmc.BigChain) *ctmc.Chain {
	n := big.N()
	p := linalg.NewMatrix(n, n)
	for i, arcs := range big.Arcs {
		for _, a := range arcs {
			p.Set(i, a.To, a.Prob)
		}
	}
	return &ctmc.Chain{P: p, H: big.H.Clone()}
}

// E11Planners compares all four configuration-search algorithms: the
// paper's greedy heuristic, the exhaustive optimum, and the two
// "full-fledged" alternatives the paper names (branch-and-bound,
// simulated annealing).
func E11Planners() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "configuration planners compared (EP+Order+Loan mix @ 6/min)",
		Columns: []string{"goal w_max [min]", "goal unavail", "planner", "config", "cost", "evaluations"},
	}
	a, err := mixAnalysis(3, 2, 1)
	if err != nil {
		return nil, err
	}
	opts := plannerOptions()
	cons := config.Constraints{MaxReplicas: []int{8, 8, 8}}
	goalsList := []config.Goals{
		{MaxUnavailability: 1.5e-6},
		{MaxWaiting: 0.0005, MaxUnavailability: 1e-6},
	}
	for _, goals := range goalsList {
		type result struct {
			name string
			rec  *config.Recommendation
			err  error
		}
		var results []result
		g, err := config.Greedy(a, goals, cons, opts)
		results = append(results, result{"greedy", g, err})
		bb, err := config.BranchAndBound(a, goals, cons, opts)
		results = append(results, result{"branch&bound", bb, err})
		an, err := config.SimulatedAnnealing(a, goals, cons, opts,
			config.AnnealingOptions{Seed: 42, Iterations: 2000})
		results = append(results, result{"annealing", an, err})
		ex, err := config.Exhaustive(a, goals, cons, opts)
		results = append(results, result{"exhaustive", ex, err})
		for _, r := range results {
			if r.err != nil {
				return nil, fmt.Errorf("%s: %w", r.name, r.err)
			}
			t.AddRow(f(goals.MaxWaiting), fmt.Sprintf("%.1e", goals.MaxUnavailability),
				r.name, r.rec.Config.String(),
				fmt.Sprintf("%d", r.rec.Cost), fmt.Sprintf("%d", r.rec.Evaluations))
		}
	}
	t.Notes = append(t.Notes,
		"branch-and-bound certifies the optimum with a fraction of the exhaustive evaluations; annealing trades certainty for robustness on rugged landscapes")
	return t, nil
}

// AblationHeterogeneous quantifies the Section 4.4 heterogeneous-servers
// extension: replacing homogeneous replicas by mixed-speed replicas of
// equal total capacity.
func AblationHeterogeneous() (*Table, error) {
	t := &Table{
		ID:      "A5",
		Title:   "heterogeneous replica speeds at equal total capacity (EP @ 20/min)",
		Columns: []string{"engine fleet", "total speed", "rho", "w engine [min]", "max throughput [wf/min]"},
	}
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(20), env)
	if err != nil {
		return nil, err
	}
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		return nil, err
	}
	fleets := []struct {
		label  string
		speeds []float64
	}{
		{"4 × 1.0", []float64{1, 1, 1, 1}},
		{"2 × 2.0", []float64{2, 2}},
		{"1 × 4.0", []float64{4}},
		{"1 × 3.0 + 2 × 0.5", []float64{3, 0.5, 0.5}},
	}
	for _, fl := range fleets {
		var total float64
		for _, s := range fl.speeds {
			total += s
		}
		cfg := perf.Config{
			Replicas: []int{4, len(fl.speeds), 4},
			Speeds:   [][]float64{nil, fl.speeds, nil},
		}
		rep, err := a.Evaluate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fl.label, f(total), f3(rep.Utilization[1]),
			fmt.Sprintf("%.6g", rep.Waiting[1]), f3(rep.MaxWorkflowThroughput))
	}
	t.Notes = append(t.Notes,
		"equal total capacity ⇒ equal utilization and throughput; under speed-proportional load splitting every replica runs at the same ρ and the request-weighted mean wait is (replica count)·l·b²⁽²⁾/(2(1−ρ)·(Σs)²)",
		"so at fixed total capacity only the replica COUNT matters for mean waiting (fewer, faster servers pool better) — the speed mix is neutral, a non-obvious consequence of proportional splitting")
	return t, nil
}
