package experiments

import (
	"fmt"
	"time"

	"performa/internal/avail"
	"performa/internal/ctmc"
	"performa/internal/perf"
	"performa/internal/sim"
	"performa/internal/spec"
	"performa/internal/workload"
)

// AblationSeries compares the paper's truncated uniformized series for
// the expected service requests (Section 4.2.1) with the exact
// linear-system solve, over the truncation coverage parameter.
func AblationSeries() (*Table, error) {
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(1), env)
	if err != nil {
		return nil, err
	}
	exact, err := ctmc.ExpectedVisits(m.Chain)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "A1",
		Title:   "truncated uniformized series versus exact visit counts (Section 4.2.1), EP workflow",
		Columns: []string{"coverage", "steps z", "residual mass", "max |visit error|"},
	}
	for _, cov := range []float64{0.9, 0.99, 0.999, 0.9999, 0.999999} {
		res, err := ctmc.ExpectedVisitsSeries(m.Chain, ctmc.SeriesOptions{Coverage: cov})
		if err != nil {
			return nil, err
		}
		var worst float64
		for i := range exact {
			if d := abs(res.Visits[i] - exact[i]); d > worst {
				worst = d
			}
		}
		t.AddRow(f(cov), fmt.Sprintf("%d", res.Steps), fmt.Sprintf("%.3e", res.ResidualMass), fmt.Sprintf("%.3e", worst))
	}
	t.Notes = append(t.Notes,
		"the paper suggests 99% coverage; the error is already below the model's other approximations there")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AblationAvailabilitySolvers compares the exact joint availability CTMC
// with the product-form path as the configuration grows: identical
// results, exponentially different state spaces.
func AblationAvailabilitySolvers() (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "exact joint availability CTMC versus product form",
		Columns: []string{"config", "joint states", "exact unavail", "product unavail", "exact time", "product time"},
	}
	env := workload.PaperEnvironment()
	for _, y := range [][]int{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {5, 5, 5}} {
		params, err := avail.ParamsFromEnvironment(env, y)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		exact, err := avail.Evaluate(params, avail.IndependentRepair)
		if err != nil {
			return nil, err
		}
		exactD := time.Since(t0)
		t1 := time.Now()
		pf, err := avail.EvaluateProductForm(params, avail.IndependentRepair, false)
		if err != nil {
			return nil, err
		}
		pfD := time.Since(t1)
		t.AddRow(
			perf.Config{Replicas: y}.String(),
			fmt.Sprintf("%d", stateCount(y)),
			fmt.Sprintf("%.3e", exact.Unavailability),
			fmt.Sprintf("%.3e", pf.Unavailability),
			exactD.Round(time.Microsecond).String(),
			pfD.Round(time.Microsecond).String(),
		)
	}
	t.Notes = append(t.Notes,
		"independence of server-type failure processes makes the product form exact; the joint CTMC is the paper's general method")
	return t, nil
}

// AblationRepairDiscipline contrasts independent repair (the paper's
// implicit assumption) with a single repair crew per type.
func AblationRepairDiscipline() (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "repair discipline: independent crews versus single crew per type",
		Columns: []string{"config", "downtime/yr independent", "downtime/yr single-crew", "ratio"},
	}
	env := workload.PaperEnvironment()
	for _, y := range [][]int{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {2, 2, 3}} {
		params, err := avail.ParamsFromEnvironment(env, y)
		if err != nil {
			return nil, err
		}
		ind, err := avail.EvaluateProductForm(params, avail.IndependentRepair, false)
		if err != nil {
			return nil, err
		}
		sc, err := avail.EvaluateProductForm(params, avail.SingleCrew, false)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ind.Unavailability > 0 {
			ratio = sc.Unavailability / ind.Unavailability
		}
		t.AddRow(perf.Config{Replicas: y}.String(),
			humanDowntime(ind.DowntimeHoursPerYear),
			humanDowntime(sc.DowntimeHoursPerYear),
			f3(ratio))
	}
	t.Notes = append(t.Notes, "a single crew only matters once multiple replicas of one type can be down simultaneously")
	return t, nil
}

// AblationDispatch compares round-robin and random load partitioning in
// the simulator against the analytic M/G/1 waiting time.
func AblationDispatch(seed uint64) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "load partitioning policy versus the analytic M/G/1 waiting time (EP @ 3/min, Y=(2,2,2))",
		Columns: []string{"type", "analytic w", "w random", "w round-robin"},
	}
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(3), env)
	if err != nil {
		return nil, err
	}
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		return nil, err
	}
	rep, err := a.Evaluate(perf.Config{Replicas: []int{2, 2, 2}})
	if err != nil {
		return nil, err
	}
	run := func(d sim.DispatchPolicy) (*sim.Result, error) {
		return sim.Run(sim.Params{
			Env: env, Models: []*spec.Model{m},
			Replicas: []int{2, 2, 2},
			Seed:     seed, Horizon: 20000, Warmup: 2000,
			Dispatch: d,
		})
	}
	random, err := run(sim.Random)
	if err != nil {
		return nil, err
	}
	rr, err := run(sim.RoundRobin)
	if err != nil {
		return nil, err
	}
	for x := 0; x < env.K(); x++ {
		t.AddRow(env.Type(x).Name,
			fmt.Sprintf("%.5g", rep.Waiting[x]),
			fmt.Sprintf("%.5g", random.Waiting[x].Mean),
			fmt.Sprintf("%.5g", rr.Waiting[x].Mean))
	}
	t.Notes = append(t.Notes,
		"random splitting keeps per-server arrivals Poisson (matching the analytic model); round-robin regularizes them and waits far less at low utilization",
		"the analytic M/G/1 prediction is therefore conservative for round-robin deployments")
	return t, nil
}
