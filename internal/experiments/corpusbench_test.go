package experiments

import (
	"math"
	"testing"
)

// TestCorpusBenchSmoke runs E17 over a slice of the checked-in corpus:
// every solver strategy must produce a finite, positive assessment and
// the sparse strategies must reproduce the dense reference.
func TestCorpusBenchSmoke(t *testing.T) {
	rows, tbl, err := CorpusBench("../../corpus", 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(corpusBenchSolvers); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if tbl.ID != "E17" {
		t.Errorf("table id = %q", tbl.ID)
	}
	for _, r := range rows {
		if !(r.MaxWaiting > 0) || math.IsInf(r.MaxWaiting, 0) || math.IsNaN(r.MaxWaiting) {
			t.Errorf("%s/%s: max waiting = %v", r.System, r.Solver, r.MaxWaiting)
		}
		if !(r.Unavail > 0 && r.Unavail < 1) {
			t.Errorf("%s/%s: unavailability = %v", r.System, r.Solver, r.Unavail)
		}
		if r.RelErr > 1e-6 {
			t.Errorf("%s/%s: rel err %v against dense", r.System, r.Solver, r.RelErr)
		}
		if r.WFStates <= 0 || r.Types < 2 {
			t.Errorf("%s/%s: states %d, types %d", r.System, r.Solver, r.WFStates, r.Types)
		}
	}
}

func TestCorpusBenchMissingDir(t *testing.T) {
	if _, _, err := CorpusBench("does-not-exist", 0); err == nil {
		t.Error("missing corpus directory accepted")
	}
}
