package experiments

import (
	"math"
	"testing"
)

// TestNetDiffBenchReduced runs the CI-sized E20 grid (no corpus — the
// synthetic sweep stands alone) and checks its invariants: the
// exponential column matches the d·H_k closed form, bias is nonnegative
// everywhere (the Jensen ordering), grows with fan-out, and shrinks as
// the branches grow more deterministic.
func TestNetDiffBenchReduced(t *testing.T) {
	rows, tbl, err := NetDiffBench(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E20" {
		t.Fatalf("table id %q, want E20", tbl.ID)
	}
	if len(tbl.Rows) != len(rows) {
		t.Fatalf("table has %d rows, JSON has %d", len(tbl.Rows), len(rows))
	}
	bias := map[[2]int]float64{}
	for _, r := range rows {
		if r.Case != "fork-join" {
			t.Fatalf("unexpected case %q with empty corpus dir", r.Case)
		}
		if r.BiasRel < 0 {
			t.Fatalf("k=%d s=%d: negative bias %v violates the Jensen ordering", r.Fan, r.Stages, r.BiasRel)
		}
		if r.Collapsed <= 0 || r.Net < r.Collapsed || r.Markings < 4 {
			t.Fatalf("k=%d s=%d: implausible row %+v", r.Fan, r.Stages, r)
		}
		if r.Stages == 1 {
			if r.RefMean == 0 || r.RefErr > 1e-9 {
				t.Fatalf("k=%d exponential: net %v vs closed form %v (rel err %v)", r.Fan, r.Net, r.RefMean, r.RefErr)
			}
		}
		bias[[2]int{r.Fan, r.Stages}] = r.BiasRel
	}
	// Monotonicity of the bias envelope on the reduced grid.
	if !(bias[[2]int{2, 1}] < bias[[2]int{4, 1}] && bias[[2]int{4, 1}] < bias[[2]int{8, 1}]) {
		t.Fatalf("bias not increasing in fan-out: %v", bias)
	}
	if !(bias[[2]int{4, 4}] < bias[[2]int{4, 1}]) {
		t.Fatalf("bias not decreasing in stages (branch determinism): %v", bias)
	}
}

// TestHarmonic pins H_1, H_2, H_4 against hand values.
func TestHarmonic(t *testing.T) {
	for _, c := range []struct {
		k    int
		want float64
	}{{1, 1}, {2, 1.5}, {4, 25.0 / 12}} {
		if got := harmonic(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("H_%d = %v, want %v", c.k, got, c.want)
		}
	}
}
