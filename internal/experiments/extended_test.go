package experiments

import "testing"

func TestE12ExtendedArchitecture(t *testing.T) {
	tbl, err := E12Extended()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 server types", len(tbl.Rows))
	}
	kinds := map[string]bool{}
	for _, row := range tbl.Rows {
		kinds[row[1]] = true
		if replicas := parse(t, row[3]); replicas < 1 {
			t.Errorf("type %s has %v replicas", row[0], replicas)
		}
		if rho := parse(t, row[4]); rho <= 0 || rho >= 1 {
			t.Errorf("type %s has utilization %v", row[0], rho)
		}
	}
	for _, k := range []string{"communication", "engine", "application", "directory", "worklist"} {
		if !kinds[k] {
			t.Errorf("kind %s missing from the table", k)
		}
	}
}
