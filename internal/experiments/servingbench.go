package experiments

// E18: serving-path throughput of wfmsd — the cost of an assessment as
// seen by an HTTP client, cold (every request builds its system model),
// warm (models resident in the LRU), and batched (one request, builds
// amortized across items by fingerprint grouping). The sweep runs a
// real server over loopback HTTP against the imported-workflow corpus,
// so the rows capture the whole serving stack: JSON decode, admission,
// the single-flight model cache, and the evaluator fan-out.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"performa/internal/server"
	"performa/internal/wfcommons"
	"performa/internal/wfjson"
)

// ServingBenchRow is one measured serving phase of E18, the record
// format of BENCH_serving.json.
type ServingBenchRow struct {
	// Phase is "cold" (fresh server, one assess per system), "warm"
	// (same server, every variant config over resident models),
	// "batch-cold" (fresh server, one assess-batch over all items), or
	// "batch-warm" (the same batch again over resident models).
	Phase string `json:"phase"`
	// Systems is the number of distinct corpus systems in the phase.
	Systems int `json:"systems"`
	// Items is the number of assessments performed.
	Items int `json:"items"`
	// Requests is the number of HTTP requests carrying them.
	Requests int `json:"requests"`
	// WallMS is the phase's end-to-end wall time.
	WallMS float64 `json:"wall_ms"`
	// MeanItemMS is WallMS over Items — the amortized per-assessment
	// latency a client observes in this phase.
	MeanItemMS float64 `json:"mean_item_ms"`
	// ItemsPerSec is the phase's assessment throughput.
	ItemsPerSec float64 `json:"items_per_sec"`
	// ModelBuilds is how many cold model builds the phase performed.
	ModelBuilds int `json:"model_builds"`
	// CacheWarm is how many items found their model already resident.
	CacheWarm int `json:"cache_warm"`
}

// servingItem is one (system document, replica configuration) pair.
type servingItem struct {
	name   string
	doc    wfjson.Document
	config []int
}

// servingGoals are the assessment goals every E18 item is scored
// against; they shape the verdict, not the work.
var servingGoals = server.GoalsJSON{MaxWaiting: 1, MaxUnavailability: 1e-3}

// ServingBench runs the E18 sweep. reduced caps the corpus at a handful
// of systems and two configuration variants per system — the CI smoke
// shape; the full sweep takes the whole corpus with three variants.
func ServingBench(dir string, reduced bool) ([]ServingBenchRow, *Table, error) {
	maxSystems, variants := 0, 3
	if reduced {
		maxSystems, variants = 6, 2
	}
	systems, err := loadServingSystems(dir, maxSystems)
	if err != nil {
		return nil, nil, err
	}
	items := servingVariants(systems, variants)

	t := &Table{
		ID:      "E18",
		Title:   "serving throughput over the imported-workflow corpus (wfmsd, loopback HTTP)",
		Columns: []string{"phase", "systems", "items", "requests", "wall", "mean item", "items/s", "builds", "warm"},
	}
	var rows []ServingBenchRow

	// Cold and warm share one server: the cold pass is what builds the
	// models the warm pass then reuses.
	ts := newServingServer()
	cold, err := servingSingletons(ts.URL, systems)
	if err != nil {
		ts.Close()
		return nil, nil, fmt.Errorf("experiments: serving cold phase: %w", err)
	}
	cold.Phase = "cold"
	rows = append(rows, cold)

	warm, err := servingSingletonsConcurrent(ts.URL, items)
	if err != nil {
		ts.Close()
		return nil, nil, fmt.Errorf("experiments: serving warm phase: %w", err)
	}
	warm.Phase = "warm"
	rows = append(rows, warm)
	ts.Close()

	// The batch phases get their own server so "batch-cold" really is
	// cold: every model build happens inside the one batch request.
	ts2 := newServingServer()
	defer ts2.Close()
	for _, phase := range []string{"batch-cold", "batch-warm"} {
		row, err := servingBatch(ts2.URL, items)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: serving %s phase: %w", phase, err)
		}
		row.Phase = phase
		rows = append(rows, row)
	}

	for _, row := range rows {
		t.AddRow(row.Phase, fmt.Sprintf("%d", row.Systems), fmt.Sprintf("%d", row.Items),
			fmt.Sprintf("%d", row.Requests), fmtWall(row.WallMS), fmtWall(row.MeanItemMS),
			fmt.Sprintf("%.1f", row.ItemsPerSec), fmt.Sprintf("%d", row.ModelBuilds),
			fmt.Sprintf("%d", row.CacheWarm))
	}
	t.Notes = append(t.Notes,
		"cold: one /v1/assess per system on a fresh server — every request pays its model build",
		"warm: every variant config through /v1/assess over resident models, concurrent clients",
		"batch-cold: one /v1/assess-batch over all items on a fresh server — builds amortized by fingerprint",
		"batch-warm: the same batch again — zero builds, pure evaluation",
		fmt.Sprintf("configs: the corpus replica vector plus %d bumped variant(s) per system", variants-1))
	return rows, t, nil
}

// newServingServer starts an in-process wfmsd over loopback HTTP.
func newServingServer() *httptest.Server {
	s := server.New(server.Options{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	return httptest.NewServer(s.Handler())
}

// loadServingSystems reads the corpus documents; limit > 0 caps the
// count (reduced mode).
func loadServingSystems(dir string, limit int) ([]servingItem, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "systems", "*.wfjson"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("experiments: no corpus systems under %s", filepath.Join(dir, "systems"))
	}
	if limit > 0 && len(paths) > limit {
		paths = paths[:limit]
	}
	out := make([]servingItem, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		env, flows, err := wfjson.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus system %s: %w", path, err)
		}
		doc, err := wfjson.ToDocument(env, flows)
		if err != nil {
			return nil, err
		}
		name := filepath.Base(path)
		out = append(out, servingItem{
			name:   name[:len(name)-len(filepath.Ext(name))],
			doc:    *doc,
			config: wfcommons.Replicas(env),
		})
	}
	return out, nil
}

// servingVariants expands each system into variant replica vectors: the
// corpus vector plus copies with one more replica rotated through the
// types, so warm-phase items exercise distinct configurations.
func servingVariants(systems []servingItem, variants int) []servingItem {
	var out []servingItem
	for _, sys := range systems {
		for v := 0; v < variants; v++ {
			cfg := append([]int(nil), sys.config...)
			if v > 0 {
				cfg[(v-1)%len(cfg)]++
			}
			out = append(out, servingItem{name: sys.name, doc: sys.doc, config: cfg})
		}
	}
	return out
}

// servingPost posts body and decodes the 200 response into out.
func servingPost(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}

// servingSingletons posts one /v1/assess per item sequentially — the
// cold pass, one request per system at its corpus replica vector.
func servingSingletons(baseURL string, items []servingItem) (ServingBenchRow, error) {
	row := ServingBenchRow{Systems: countServingSystems(items), Items: len(items), Requests: len(items)}
	began := time.Now()
	for _, it := range items {
		var resp server.AssessResponse
		if err := servingPost(baseURL+"/v1/assess", server.AssessRequest{
			System: it.doc, Config: it.config, Goals: servingGoals,
		}, &resp); err != nil {
			return row, fmt.Errorf("%s: %w", it.name, err)
		}
		if resp.CacheWarm {
			row.CacheWarm++
		} else {
			row.ModelBuilds++
		}
	}
	fillServingTiming(&row, time.Since(began))
	return row, nil
}

// servingSingletonsConcurrent fans the items over concurrent clients —
// the interactive many-users shape the warm cache exists for.
func servingSingletonsConcurrent(baseURL string, items []servingItem) (ServingBenchRow, error) {
	row := ServingBenchRow{Systems: countServingSystems(items), Items: len(items), Requests: len(items)}
	clients := runtime.NumCPU()
	if clients > 4 {
		clients = 4
	}
	var (
		mu       sync.Mutex
		firstErr error
		warm     int
	)
	next := make(chan servingItem)
	var wg sync.WaitGroup
	began := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range next {
				var resp server.AssessResponse
				err := servingPost(baseURL+"/v1/assess", server.AssessRequest{
					System: it.doc, Config: it.config, Goals: servingGoals,
				}, &resp)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", it.name, err)
				}
				if err == nil && resp.CacheWarm {
					warm++
				}
				mu.Unlock()
			}
		}()
	}
	for _, it := range items {
		next <- it
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return row, firstErr
	}
	fillServingTiming(&row, time.Since(began))
	row.CacheWarm = warm
	row.ModelBuilds = len(items) - warm
	return row, nil
}

// servingBatch posts all items as one /v1/assess-batch request.
func servingBatch(baseURL string, items []servingItem) (ServingBenchRow, error) {
	row := ServingBenchRow{Systems: countServingSystems(items), Items: len(items), Requests: 1}
	req := server.AssessBatchRequest{}
	for _, it := range items {
		req.Items = append(req.Items, server.AssessBatchItem{
			System: it.doc, Config: it.config, Goals: servingGoals,
		})
	}
	began := time.Now()
	var resp server.AssessBatchResponse
	if err := servingPost(baseURL+"/v1/assess-batch", req, &resp); err != nil {
		return row, err
	}
	for i, item := range resp.Items {
		if item.Error != nil {
			return row, fmt.Errorf("item %d (%s): %s (%s)", i, items[i].name, item.Error.Error, item.Error.Code)
		}
	}
	fillServingTiming(&row, time.Since(began))
	row.ModelBuilds = resp.ModelBuilds
	row.CacheWarm = resp.CacheWarm
	return row, nil
}

// fillServingTiming derives the wall, per-item, and throughput fields.
func fillServingTiming(row *ServingBenchRow, elapsed time.Duration) {
	row.WallMS = float64(elapsed) / float64(time.Millisecond)
	if row.Items > 0 {
		row.MeanItemMS = row.WallMS / float64(row.Items)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		row.ItemsPerSec = float64(row.Items) / sec
	}
}

// countServingSystems counts distinct system names among the items.
func countServingSystems(items []servingItem) int {
	seen := make(map[string]struct{}, len(items))
	for _, it := range items {
		seen[it.name] = struct{}{}
	}
	return len(seen)
}
