package experiments

import (
	"strings"
	"testing"
)

func TestE13DiscoveryAccuracy(t *testing.T) {
	tbl, err := E13Discovery(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		truth := parse(t, row[1])
		got := parse(t, row[2])
		var tolerance float64
		switch {
		case row[0] == "execution states":
			tolerance = 0
		case strings.HasPrefix(row[0], "P("):
			tolerance = 0.07 // binomial noise at n≈500
		default:
			tolerance = 0.25*truth + 0.6 // relative + wall-clock overhead allowance
		}
		if d := abs(got - truth); d > tolerance {
			t.Errorf("%s: discovered %v vs truth %v (tolerance %v)", row[0], got, truth, tolerance)
		}
	}
}
