package experiments

// E19: drift-to-advisory latency of the reconfiguration controller —
// how long the closed loop takes from the event batch that crosses the
// drift threshold to the advisory carrying a warm-started re-plan, per
// corpus system. Each system is registered as a deployment on one
// reconfiguring wfmsd, a synthetic service-time drift (2× the designed
// mean, far above the 0.25 relative-change threshold) is streamed, and
// the advisory is polled. Two latencies matter: the server-measured
// drift-to-advisory path (crossing → recalibrated rebuild → warm-start
// greedy → sensitivity table → advisory) and the end-to-end wall a
// polling client observes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"time"

	"performa/internal/audit"
	"performa/internal/server"
	"performa/internal/wfjson"
)

// ReconfigBenchRow is one system's trip through the reconfiguration
// loop, the record format of BENCH_reconfig.json.
type ReconfigBenchRow struct {
	System    string `json:"system"`
	Types     int    `json:"types"`
	Workflows int    `json:"workflows"`
	// DeployedConfig is the registered (corpus) replica vector;
	// AdvisedConfig the advisory's recommendation (empty on a failed
	// re-plan).
	DeployedConfig []int `json:"deployed_config"`
	AdvisedConfig  []int `json:"advised_config,omitempty"`
	// Outcome is "advised" or "failed" (the advisory's planner error
	// code).
	Outcome string `json:"outcome"`
	// Evaluations is the warm-started planner's evaluation count.
	Evaluations int `json:"evaluations,omitempty"`
	// AdvisoryLatencyMS is the server-measured drift-to-advisory
	// latency; EndToEndMS the client-observed wall from posting the
	// crossing batch to seeing the advisory.
	AdvisoryLatencyMS float64 `json:"advisory_latency_ms"`
	EndToEndMS        float64 `json:"end_to_end_ms"`
	// TopFactor is the advisory's highest-ranked sensitivity
	// attribution.
	TopFactor string `json:"top_factor,omitempty"`
}

// reconfigDriftSamples is how many drifted service samples each system
// streams — comfortably above the drift detector's MinSamples default
// (25), so one batch crosses.
const reconfigDriftSamples = 60

// ReconfigBench runs the E19 sweep. reduced caps the corpus at four
// systems (the CI smoke shape).
func ReconfigBench(dir string, reduced bool) ([]ReconfigBenchRow, *Table, error) {
	limit := 0
	if reduced {
		limit = 4
	}
	systems, err := loadServingSystems(dir, limit)
	if err != nil {
		return nil, nil, err
	}

	s := server.New(server.Options{
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		Reconfigure: true,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var rows []ReconfigBenchRow
	var sinceID uint64
	for _, sys := range systems {
		row, lastID, err := reconfigSystem(ts.URL, sys, sinceID)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: reconfig %s: %w", sys.name, err)
		}
		sinceID = lastID
		rows = append(rows, row)
	}

	t := &Table{
		ID:      "E19",
		Title:   "drift-to-advisory latency of the reconfiguration loop (wfmsd -reconfigure, loopback HTTP)",
		Columns: []string{"system", "types", "deployed", "advised", "outcome", "evals", "advisory", "end-to-end"},
	}
	advised, under1s := 0, 0
	for _, r := range rows {
		if r.Outcome == "advised" {
			advised++
		}
		if r.AdvisoryLatencyMS < 1000 {
			under1s++
		}
		t.AddRow(r.System, fmt.Sprintf("%d", r.Types), fmt.Sprintf("%v", r.DeployedConfig),
			fmt.Sprintf("%v", r.AdvisedConfig), r.Outcome, fmt.Sprintf("%d", r.Evaluations),
			fmtWall(r.AdvisoryLatencyMS), fmtWall(r.EndToEndMS))
	}
	t.Notes = append(t.Notes,
		"advisory: server-measured latency from the drift crossing to the emitted advisory",
		"end-to-end: client wall from posting the crossing batch to seeing the advisory on /v1/advisories",
		"drift: 2× service-time samples on the first server type (relative change 1.0 vs threshold 0.25)",
		fmt.Sprintf("%d/%d systems advised; %d/%d advisories under 1 s", advised, len(rows), under1s, len(rows)))
	return rows, t, nil
}

// reconfigSystem runs one system through the loop: probe the deployed
// configuration's metrics, register the deployment with 2× headroom
// goals, stream the drifted batch, and poll for the advisory.
func reconfigSystem(baseURL string, sys servingItem, sinceID uint64) (ReconfigBenchRow, uint64, error) {
	row := ReconfigBenchRow{System: sys.name, DeployedConfig: sys.config}
	env, flows, err := wfjson.FromDocument(&sys.doc)
	if err != nil {
		return row, sinceID, err
	}
	row.Types = env.K()
	row.Workflows = len(flows)

	// Probe: the deployed configuration's metrics under an always-met
	// goal; the deployment's real goal is 2× the observed waiting, so
	// the registered configuration starts feasible with headroom.
	var probe server.AssessResponse
	if err := servingPost(baseURL+"/v1/assess", server.AssessRequest{
		System: sys.doc, Config: sys.config, Goals: server.GoalsJSON{MaxWaiting: 1e9},
	}, &probe); err != nil {
		return row, sinceID, fmt.Errorf("probe assess: %w", err)
	}
	observed := float64(probe.Assessment.MaxWaiting)
	if !(observed > 0) || observed > 1e8 {
		return row, sinceID, fmt.Errorf("deployed config %v has max waiting %v; not a stable deployment", sys.config, observed)
	}
	goals := server.GoalsJSON{MaxWaiting: 2 * observed}
	var reg server.DeploymentJSON
	if err := servingPost(baseURL+"/v1/deployments", server.DeploymentRequest{
		System: sys.doc, Config: sys.config, Goals: goals,
	}, &reg); err != nil {
		return row, sinceID, fmt.Errorf("register deployment: %w", err)
	}

	// Synthesize drift: service-time samples at twice the designed mean
	// of the first server type.
	st := env.Type(0)
	recs := make([]audit.Record, reconfigDriftSamples)
	for i := range recs {
		recs[i] = audit.Record{
			Kind:       audit.ServiceRequest,
			Time:       float64(i),
			ServerType: st.Name,
			Service:    2 * st.MeanService,
		}
	}
	began := time.Now()
	ev, err := reconfigPostEvents(baseURL, reg.Fingerprint, recs)
	if err != nil {
		return row, sinceID, err
	}
	if !ev.Invalidated {
		return row, sinceID, fmt.Errorf("drift batch did not cross: score %v", ev.Drift)
	}

	adv, err := reconfigWaitAdvisory(baseURL, reg.Fingerprint, sinceID, 30*time.Second)
	if err != nil {
		return row, sinceID, err
	}
	row.EndToEndMS = float64(time.Since(began)) / float64(time.Millisecond)
	row.AdvisoryLatencyMS = adv.LatencyMS
	row.Evaluations = adv.Evaluations
	if adv.PlannerCode != "" {
		row.Outcome = adv.PlannerCode
	} else {
		row.Outcome = "advised"
		row.AdvisedConfig = adv.NewConfig
	}
	if len(adv.TopFactors) > 0 {
		row.TopFactor = adv.TopFactors[0].Attribution
	}
	return row, adv.ID, nil
}

// reconfigPostEvents streams records to /v1/events as JSON lines.
func reconfigPostEvents(baseURL, fingerprint string, recs []audit.Record) (server.EventsResponse, error) {
	var out server.EventsResponse
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return out, err
		}
	}
	resp, err := http.Post(baseURL+"/v1/events?fingerprint="+fingerprint, "application/x-ndjson", &buf)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("events: status %d: %s", resp.StatusCode, raw)
	}
	return out, json.Unmarshal(raw, &out)
}

// reconfigWaitAdvisory polls /v1/advisories until the system's advisory
// with ID > sinceID appears.
func reconfigWaitAdvisory(baseURL, fingerprint string, sinceID uint64, timeout time.Duration) (server.AdvisoryJSON, error) {
	deadline := time.Now().Add(timeout)
	url := fmt.Sprintf("%s/v1/advisories?fingerprint=%s&since_id=%d", baseURL, fingerprint, sinceID)
	for {
		resp, err := http.Get(url)
		if err != nil {
			return server.AdvisoryJSON{}, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return server.AdvisoryJSON{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return server.AdvisoryJSON{}, fmt.Errorf("advisories: status %d: %s", resp.StatusCode, raw)
		}
		var list server.AdvisoriesResponse
		if err := json.Unmarshal(raw, &list); err != nil {
			return server.AdvisoryJSON{}, err
		}
		if len(list.Advisories) > 0 {
			return list.Advisories[0], nil
		}
		if time.Now().After(deadline) {
			return server.AdvisoryJSON{}, fmt.Errorf("no advisory for %s within %v", fingerprint, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
