package experiments

import (
	"context"
	"fmt"

	"performa/internal/avail"
	"performa/internal/calibrate"
	"performa/internal/engine"
	"performa/internal/perf"
	"performa/internal/sim"
	"performa/internal/spec"
	"performa/internal/workload"
)

// E7Options tunes the simulation-validation experiment.
type E7Options struct {
	// Seed drives the simulator.
	Seed uint64
	// Horizon is the simulated duration in minutes; zero means 20000.
	Horizon float64
}

// E7Validation compares the analytic models against discrete-event
// simulation measurements — the substitute for the paper's testbed
// measurements (Section 8): waiting times and utilizations per type, the
// workflow turnaround, and (with failures enabled) the availability.
func E7Validation(opts E7Options) (*Table, error) {
	if opts.Horizon <= 0 {
		opts.Horizon = 20000
	}
	env := workload.PaperEnvironment()
	m, err := spec.Build(workload.EPWorkflow(3), env)
	if err != nil {
		return nil, err
	}
	a, err := perf.NewAnalysis(env, []*spec.Model{m})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E7",
		Title:   "analytic models versus discrete-event simulation (EP @ 3/min)",
		Columns: []string{"config", "metric", "analytic", "simulated", "rel err [%]"},
	}
	for _, y := range [][]int{{1, 1, 1}, {2, 2, 2}} {
		rep, err := a.Evaluate(perf.Config{Replicas: y})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Params{
			Env: env, Models: []*spec.Model{m},
			Replicas: y,
			Seed:     opts.Seed, Horizon: opts.Horizon, Warmup: opts.Horizon / 10,
			Dispatch: sim.Random,
		})
		if err != nil {
			return nil, err
		}
		cfg := perf.Config{Replicas: y}.String()
		add := func(metric string, analytic, simulated float64) {
			rel := 0.0
			if analytic != 0 {
				rel = (simulated - analytic) / analytic * 100
			}
			t.AddRow(cfg, metric, fmt.Sprintf("%.5g", analytic), fmt.Sprintf("%.5g", simulated), f3(rel))
		}
		for x := 0; x < env.K(); x++ {
			add("rho "+env.Type(x).Name, rep.Utilization[x], res.Utilization[x])
			add("w "+env.Type(x).Name, rep.Waiting[x], res.Waiting[x].Mean)
		}
		add("turnaround", m.Turnaround(), res.Turnaround[0].Mean)
	}

	// Availability validation with accelerated failure rates so the
	// simulation samples enough failure cycles.
	fastEnv := fastFailureEnv()
	fm, err := spec.Build(workload.EPWorkflow(0.5), fastEnv)
	if err != nil {
		return nil, err
	}
	replicas := []int{2, 2, 2}
	params, err := avail.ParamsFromEnvironment(fastEnv, replicas)
	if err != nil {
		return nil, err
	}
	availRep, err := avail.EvaluateProductForm(params, avail.IndependentRepair, false)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Params{
		Env: fastEnv, Models: []*spec.Model{fm},
		Replicas:       replicas,
		EnableFailures: true,
		Seed:           opts.Seed + 1, Horizon: 10 * opts.Horizon, Warmup: opts.Horizon,
		Dispatch: sim.Random,
	})
	if err != nil {
		return nil, err
	}
	rel := (res.Unavailability - availRep.Unavailability) / availRep.Unavailability * 100
	t.AddRow("(2,2,2) accel", "unavailability",
		fmt.Sprintf("%.5g", availRep.Unavailability),
		fmt.Sprintf("%.5g", res.Unavailability), f3(rel))
	t.Notes = append(t.Notes,
		"per-instance request bursts make the measured waiting sit slightly above the Poisson-based M/G/1 prediction; see EXPERIMENTS.md",
		"availability row uses accelerated failure rates (MTTF 200/100/50 min, MTTR 10 min) so downtime mass is sampled")
	return t, nil
}

// fastFailureEnv is the paper environment with failure rates accelerated
// to make availability measurable in short simulations.
func fastFailureEnv() *spec.Environment {
	types := workload.PaperEnvironment().Types()
	types[0].FailureRate = 1.0 / 200
	types[1].FailureRate = 1.0 / 100
	types[2].FailureRate = 1.0 / 50
	return spec.MustEnvironment(types...)
}

// E8Options tunes the calibration-loop experiment.
type E8Options struct {
	// Seed drives the runtime.
	Seed uint64
	// Instances is the number of workflow instances to execute; zero
	// means 400.
	Instances int
}

// E8Calibration exercises the mapping→execution→calibration loop of
// Section 7.1: the mini-WFMS runtime executes the EP workflow, the
// calibration component estimates the model parameters from the audit
// trail, and the table reports estimated versus specified values.
func E8Calibration(opts E8Options) (*Table, error) {
	if opts.Instances <= 0 {
		opts.Instances = 400
	}
	env := workload.PaperEnvironment()
	w := workload.EPWorkflow(1)
	rt := engine.New(env, engine.Options{
		// 1 ms of wall time per model minute: large enough that the
		// sub-millisecond sleep overhead stays negligible in the
		// measured durations, small enough that 400 concurrent
		// instances finish in under a second.
		TimeScale:  0.001,
		Seed:       opts.Seed,
		AppWorkers: map[string]int{workload.AppType: 256},
		Users:      256,
	})
	// Space arrivals two model-minutes apart so measured activity
	// durations reflect execution, not contention for the worker pools.
	done, err := rt.RunInstances(context.Background(), w, opts.Instances, 2)
	if err != nil {
		return nil, err
	}
	est, err := calibrate.FromTrail(rt.Trail())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("calibration from %d executed instances (mini-WFMS audit trail)", done),
		Columns: []string{"parameter", "specified", "estimated"},
	}
	p := workload.EPBranchProbs
	probRows := []struct {
		name     string
		from, to string
		fanout   int
		want     float64
	}{
		{"P(NewOrder→CreditCardCheck)", "NewOrder_S", "CreditCardCheck_S", 2, p.PayByCreditCard},
		{"P(CreditCardCheck→exit)", "CreditCardCheck_S", "EP_EXIT_S", 2, p.CardProblem},
		{"P(CheckPayment→Reminder)", "CheckPayment_S", "Reminder_S", 2, p.ReminderLoop},
	}
	for _, row := range probRows {
		got, ok := est.TransitionProb("EP", row.from, row.to, row.fanout, 0)
		if !ok {
			got = 0
		}
		t.AddRow(row.name, f3(row.want), f3(got))
	}
	for _, act := range []string{"NewOrder", "CheckPayment", "PickGoods"} {
		mp := est.ActivityDurations[act]
		got := 0.0
		if mp != nil {
			got = mp.Mean
		}
		t.AddRow("duration("+act+") [min]", f3(workload.EPDurations[act]), f3(got))
	}
	t.AddRow("arrival rate [1/min]", "(execution-driven)", f3(est.ArrivalRates["EP"]))
	t.Notes = append(t.Notes,
		"durations carry sub-minute sleep-scheduling noise at the 1 ms/min time scale; branch probabilities are exact-frequency estimates")
	return t, nil
}

// All runs every experiment with default options.
func All() ([]*Table, error) {
	var tables []*Table
	steps := []func() (*Table, error){
		E1Availability,
		E2EPWorkflow,
		E3Throughput,
		E4WaitingCurve,
		E5Performability,
		E6Greedy,
		func() (*Table, error) { return E7Validation(E7Options{Seed: 42}) },
		func() (*Table, error) { return E8Calibration(E8Options{Seed: 42}) },
		E9Distribution,
		E10Scalability,
		E11Planners,
		E12Extended,
		func() (*Table, error) { return E13Discovery(42) },
		AblationSeries,
		AblationAvailabilitySolvers,
		AblationRepairDiscipline,
		func() (*Table, error) { return AblationDispatch(42) },
		AblationHeterogeneous,
		AblationTransient,
		func() (*Table, error) { return AblationPooling(42) },
	}
	for _, step := range steps {
		tbl, err := step()
		if err != nil {
			return tables, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
