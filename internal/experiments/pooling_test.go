package experiments

import (
	"strings"
	"testing"
)

func TestAblationPoolingAccuracy(t *testing.T) {
	tbl, err := AblationPooling(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		splitModel := parse(t, row[2])
		splitSim := parse(t, row[3])
		pooledModel := parse(t, row[4])
		pooledSim := parse(t, row[5])
		// Simulation within 10% of each analytic model.
		if rel := abs(splitSim-splitModel) / splitModel; rel > 0.1 {
			t.Errorf("row %d: split sim %v vs model %v", i, splitSim, splitModel)
		}
		if rel := abs(pooledSim-pooledModel) / pooledModel; rel > 0.1 {
			t.Errorf("row %d: pooled sim %v vs model %v", i, pooledSim, pooledModel)
		}
		// Pooling always wins.
		if pooledModel >= splitModel || pooledSim >= splitSim {
			t.Errorf("row %d: pooling did not win", i)
		}
		if !strings.HasSuffix(row[6], "x") {
			t.Errorf("row %d: gain cell %q", i, row[6])
		}
	}
	// The gain grows with the replica count at fixed rho: compare the
	// rho=0.3 rows for c=2 and c=4.
	gain2 := parse(t, strings.TrimSuffix(tbl.Rows[0][6], "x"))
	gain4 := parse(t, strings.TrimSuffix(tbl.Rows[3][6], "x"))
	if gain4 <= gain2 {
		t.Errorf("gain at c=4 (%v) not above c=2 (%v)", gain4, gain2)
	}
}
