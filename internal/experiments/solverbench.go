package experiments

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"performa/internal/avail"
	"performa/internal/ctmc"
	"performa/internal/linalg"
	"performa/internal/wfmserr"
)

// SolverBenchRow is one measured steady-state solve of E16, the record
// format of BENCH_solver.json.
type SolverBenchRow struct {
	// Config is the replication vector, e.g. "(7,15,15)".
	Config string `json:"config"`
	// States is the joint chain size Π (Y_x + 1).
	States int `json:"states"`
	// NNZ is the generator's stored-entry count (diagonal included).
	NNZ int `json:"nnz"`
	// Solver names the strategy ("dense", "gauss_seidel", "bicgstab",
	// "jacobi", "power", or "product_form").
	Solver string `json:"solver"`
	// WallMS is the end-to-end solve time (model build included).
	WallMS float64 `json:"wall_ms"`
	// Iterations is the solver sweep/step count (0 for direct solves).
	Iterations int64 `json:"iterations"`
	// AllocMB is the heap allocated during the solve.
	AllocMB float64 `json:"alloc_mb"`
	// PeakRSSMB is the process resident-set high-water mark after the
	// solve (monotone across rows; 0 where /proc is unavailable).
	PeakRSSMB float64 `json:"peak_rss_mb,omitempty"`
	// Unavail is the computed steady-state unavailability.
	Unavail float64 `json:"unavail"`
	// RelErr is the relative error against the closed-form reference
	// 1 − Π_x (1 − u_x^{Y_x}), which is exact for independent repair.
	RelErr float64 `json:"rel_err"`
	// Error is "no_convergence" when a diagnostic solver (Jacobi, power)
	// legitimately failed to converge on this chain; Unavail and RelErr
	// are meaningless then. Production solvers failing abort the sweep.
	Error string `json:"error,omitempty"`
}

// solverBenchCase is one chain size of the sweep with the strategies it
// exercises; dense appears only where the MaxMatrixDim budget admits it.
type solverBenchCase struct {
	replicas []int
	solvers  []string
}

// solverBenchCases returns the sweep: reduced keeps the CI smoke run
// (race detector included) in seconds, the full sweep scales to the
// ~3-million-state chain that breaks the former 2^18 ceiling. Depth
// comes from extra server types rather than extreme per-type
// replication, so the closed-form unavailability stays well inside
// double precision and the rates stay in the production regime (λ < μ).
func solverBenchCases(reduced bool) []solverBenchCase {
	all := []string{"dense", "gauss_seidel", "jacobi", "bicgstab", "power", "product_form"}
	sparse := []string{"gauss_seidel", "bicgstab", "product_form"}
	denseEdge := []string{"dense", "gauss_seidel", "bicgstab", "product_form"}
	if reduced {
		return []solverBenchCase{
			{replicas: []int{3, 3, 3}, solvers: all},       // 64 states
			{replicas: []int{7, 7, 7}, solvers: all},       // 512 states
			{replicas: []int{15, 15, 15}, solvers: sparse}, // 4096 states
		}
	}
	return []solverBenchCase{
		{replicas: []int{3, 3, 3}, solvers: all},                   // 64
		{replicas: []int{7, 7, 7}, solvers: all},                   // 512
		{replicas: []int{7, 15, 15}, solvers: denseEdge},           // 2048 = dense budget edge
		{replicas: []int{7, 7, 7, 7, 7}, solvers: sparse},          // 32768
		{replicas: []int{7, 7, 7, 7, 7, 7}, solvers: sparse},       // 262144
		{replicas: []int{11, 11, 11, 11, 11, 11}, solvers: sparse}, // 2985984 > 10 × 2^18
	}
}

// solverBenchParams builds the per-type failure/repair rates of the
// sweep. The paper environment's unavailability underflows double
// precision beyond a few replicas per type (u^Y with u ≈ 5e-3), which
// would turn the rel-err column into round-off noise; the bench instead
// uses per-server unavailabilities u ∈ {0.30, 0.40, 0.45} — harsh
// enough that the closed-form reference stays representable at every
// sweep depth, but still in the λ < μ regime of real systems.
func solverBenchParams(replicas []int) []avail.TypeParams {
	us := []float64{0.30, 0.40, 0.45}
	params := make([]avail.TypeParams, len(replicas))
	for i, y := range replicas {
		u := us[i%len(us)]
		params[i] = avail.TypeParams{
			Replicas:    y,
			FailureRate: u / (1 - u), // λ/(λ+μ) = u with μ = 1
			RepairRate:  1,
		}
	}
	return params
}

// SolverBench runs the E16 solver-scaling sweep over joint availability
// CTMCs of a synthetic harsh-availability environment and returns both
// the raw measurement rows (for BENCH_solver.json) and the printable
// table.
func SolverBench(reduced bool) ([]SolverBenchRow, *Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "steady-state solver scaling on the joint availability CTMC",
		Columns: []string{"config", "states", "nnz", "solver", "wall", "iters", "alloc MB", "unavail", "rel err"},
	}
	var rows []SolverBenchRow
	for _, c := range solverBenchCases(reduced) {
		params := solverBenchParams(c.replicas)
		ref := closedFormUnavailability(params)
		n, nnz := jointChainSize(params)
		for _, solver := range c.solvers {
			row, err := runSolverBenchRow(params, solver)
			if err != nil {
				return nil, nil, fmt.Errorf("solver bench %v/%s: %w", c.replicas, solver, err)
			}
			row.Config = configString(c.replicas)
			row.States = n
			row.NNZ = nnz
			unavailCell, relErrCell := "diverged", "-"
			if row.Error == "" {
				row.RelErr = relErr(ref, row.Unavail)
				unavailCell = fmt.Sprintf("%.4e", row.Unavail)
				relErrCell = fmt.Sprintf("%.1e", row.RelErr)
			}
			rows = append(rows, row)
			t.AddRow(row.Config, fmt.Sprintf("%d", row.States), fmt.Sprintf("%d", row.NNZ),
				row.Solver, fmtWall(row.WallMS), fmt.Sprintf("%d", row.Iterations),
				fmt.Sprintf("%.1f", row.AllocMB), unavailCell, relErrCell)
		}
	}
	t.Notes = append(t.Notes,
		"per-server unavailabilities u ∈ {0.30, 0.40, 0.45} keep the metric representable at every depth",
		"reference: closed form 1 − Π_x (1 − u_x^{Y_x}), exact for independent repair",
		"dense rows stop at the MaxMatrixDim budget (2048); the sparse path continues to MaxStates (2^23)",
		"product_form solves k one-dimensional marginals instead of the joint chain")
	return rows, t, nil
}

// runSolverBenchRow measures one solve: wall clock, heap allocation,
// iteration count (from the process-global solver counters), and the
// resulting unavailability.
func runSolverBenchRow(params []avail.TypeParams, solver string) (SolverBenchRow, error) {
	row := SolverBenchRow{Solver: solver}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	before := linalg.SolverCounters()
	t0 := time.Now()

	var rep *avail.Report
	var err error
	if solver == "product_form" {
		rep, err = avail.EvaluateProductFormSolver(params, avail.IndependentRepair, false, nil, ctmc.SolverAuto)
	} else {
		var strategy ctmc.SolverStrategy
		strategy, err = ctmc.ParseSolverStrategy(solver)
		if err == nil {
			rep, err = avail.EvaluateSolver(params, avail.IndependentRepair, strategy)
		}
	}
	row.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	runtime.ReadMemStats(&m1)
	row.AllocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
	row.PeakRSSMB = peakRSSMB()
	for _, c := range linalg.SolverCountersDelta(before) {
		row.Iterations += c.Iterations
	}
	if err != nil {
		// Jacobi and power iteration carry no convergence guarantee;
		// their divergence on a chain is a measurement, not a failure.
		diagnostic := solver == "jacobi" || solver == "power"
		if diagnostic && wfmserr.CodeOf(err) == wfmserr.CodeNoConvergence {
			row.Error = "no_convergence"
			return row, nil
		}
		return row, err
	}
	row.Unavail = rep.Unavailability
	return row, nil
}

// closedFormUnavailability is the paper's birth–death closed form: with
// independent repair the per-type availability is 1 − u^Y, u = λ/(λ+μ),
// and the types are independent.
func closedFormUnavailability(params []avail.TypeParams) float64 {
	up := 1.0
	for _, p := range params {
		u := p.FailureRate / (p.FailureRate + p.RepairRate)
		up *= 1 - math.Pow(u, float64(p.Replicas))
	}
	return 1 - up
}

// jointChainSize returns the joint state count and the generator's CSR
// entry count: one diagonal per state, one failure arc per type with
// X_t > 0, one repair arc per type with X_t < Y_t.
func jointChainSize(params []avail.TypeParams) (n, nnz int) {
	n = 1
	for _, p := range params {
		n *= p.Replicas + 1
	}
	nnz = n
	for _, p := range params {
		// States with X_t > 0 (failure arc) and with X_t < Y_t (repair
		// arc) each number n·Y_t/(Y_t+1).
		nnz += 2 * (n / (p.Replicas + 1)) * p.Replicas
	}
	return n, nnz
}

func configString(replicas []int) string {
	parts := make([]string, len(replicas))
	for i, y := range replicas {
		parts[i] = strconv.Itoa(y)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func relErr(ref, got float64) float64 {
	if ref == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-ref) / math.Abs(ref)
}

func fmtWall(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond))
	return d.Round(10 * time.Microsecond).String()
}

// peakRSSMB reads the process resident-set high-water mark (VmHWM) from
// /proc, returning 0 on platforms without it.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
