package wfcommons

import (
	"bytes"
	"strings"
	"testing"

	"performa/internal/wfmserr"
)

const legacyTrace = `{
  "name": "toy",
  "schemaVersion": "1.3",
  "workflow": {
    "machines": [{"nodeName": "node01", "cpu": {"count": 8, "speed": 2400}}],
    "tasks": [
      {"name": "split_1", "id": "split_1", "runtimeInSeconds": 10,
       "children": ["work_1", "work_2"], "machine": "node01"},
      {"name": "work_1", "id": "work_1", "runtime": 30, "parents": ["split_1"]},
      {"name": "work_2", "id": "work_2", "runtime": 34, "parents": ["split_1"]},
      {"name": "merge_1", "id": "merge_1", "runtime": 12,
       "parents": ["work_1", "work_2"]}
    ]
  }
}`

const splitTrace = `{
  "name": "toy14",
  "schemaVersion": "1.4",
  "workflow": {
    "specification": {
      "tasks": [
        {"name": "split", "id": "id01", "children": ["id02", "id03"]},
        {"name": "work_a", "id": "id02", "parents": ["id01"]},
        {"name": "work_b", "id": "id03", "parents": ["id01"]},
        {"name": "merge", "id": "id04", "parents": ["id02", "id03"]}
      ]
    },
    "execution": {
      "tasks": [
        {"id": "id01", "runtimeInSeconds": 8, "machine": "n1"},
        {"id": "id02", "runtimeInSeconds": 25},
        {"id": "id03", "runtimeInSeconds": 27},
        {"id": "id04", "runtimeInSeconds": 9}
      ],
      "machines": [{"nodeName": "n1", "cpu": {"count": 4}}]
    }
  }
}`

func TestParseLegacySchema(t *testing.T) {
	in, err := ParseInstance(strings.NewReader(legacyTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 4 {
		t.Fatalf("want 4 tasks, got %d", len(in.Tasks))
	}
	split, ok := in.Task("split_1")
	if !ok || split.Runtime != 10 {
		t.Fatalf("split_1: ok=%v task=%+v", ok, split)
	}
	if split.Category != "split" {
		t.Errorf("derived category = %q, want split", split.Category)
	}
	if len(split.Children) != 2 {
		t.Errorf("split children = %v", split.Children)
	}
	merge, _ := in.Task("merge_1")
	if got := strings.Join(merge.Parents, ","); got != "work_1,work_2" {
		t.Errorf("merge parents = %q", got)
	}
	if len(in.Machines) != 1 || in.Machines[0].Cores != 8 {
		t.Errorf("machines = %+v", in.Machines)
	}
	lv := in.Levels()
	if lv["split_1"] != 0 || lv["work_1"] != 1 || lv["merge_1"] != 2 {
		t.Errorf("levels = %v", lv)
	}
}

func TestParseSplitSchema(t *testing.T) {
	in, err := ParseInstance(strings.NewReader(splitTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 4 {
		t.Fatalf("want 4 tasks, got %d", len(in.Tasks))
	}
	s, ok := in.Task("id01")
	if !ok || s.Runtime != 8 || s.Machine != "n1" {
		t.Fatalf("id01 = %+v", s)
	}
	// Parents declared only on the child side must appear as children on
	// the parent side too.
	if got := strings.Join(s.Children, ","); got != "id02,id03" {
		t.Errorf("id01 children = %q", got)
	}
	if len(in.Machines) != 1 || in.Machines[0].Cores != 4 {
		t.Errorf("machines = %+v", in.Machines)
	}
}

// mustInvalid asserts err is a typed invalid_model error mentioning frag.
func mustInvalid(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want invalid_model error containing %q, got nil", frag)
	}
	if code := wfmserr.CodeOf(err); code != wfmserr.CodeInvalidModel {
		t.Fatalf("error code = %v, want invalid_model (err: %v)", code, err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestParseDefects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		frag string
	}{
		{"empty workflow", `{"name":"e","workflow":{"tasks":[]}}`, "no tasks"},
		{"not json", `{`, "parsing trace"},
		{"duplicate id", `{"workflow":{"tasks":[
			{"id":"a","runtime":1},{"id":"a","runtime":2}]}}`, "duplicate task id"},
		{"missing runtime", `{"workflow":{"tasks":[{"id":"a"}]}}`, "no measured runtime"},
		{"zero runtime", `{"workflow":{"tasks":[{"id":"a","runtime":0}]}}`, "must be positive"},
		{"negative runtime", `{"workflow":{"tasks":[{"id":"a","runtime":-3}]}}`, "must be positive"},
		{"dangling ref", `{"workflow":{"tasks":[
			{"id":"a","runtime":1,"children":["ghost"]}]}}`, "unknown task"},
		{"self dependency", `{"workflow":{"tasks":[
			{"id":"a","runtime":1,"children":["a"]}]}}`, "depends on itself"},
		{"cycle", `{"workflow":{"tasks":[
			{"id":"a","runtime":1,"children":["b"]},
			{"id":"b","runtime":1,"children":["a"]}]}}`, "dependency cycle"},
		{"no id or name", `{"workflow":{"tasks":[{"runtime":1}]}}`, "neither id nor name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseInstance(strings.NewReader(tc.doc))
			mustInvalid(t, err, tc.frag)
		})
	}
}

func TestDeriveCategory(t *testing.T) {
	cases := map[string]string{
		"individuals_00000023": "individuals",
		"mProject_ID0007":      "mProject",
		"blastall_42":          "blastall",
		"plain":                "plain",
		"123":                  "123", // no stem left: keep the name
	}
	for name, want := range cases {
		if got := deriveCategory(name); got != want {
			t.Errorf("deriveCategory(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestEncodeRoundTrip pins EncodeInstance → ParseInstance as lossless
// and byte-stable: re-encoding the re-parsed instance reproduces the
// bytes exactly.
func TestEncodeRoundTrip(t *testing.T) {
	in, err := ParseInstance(strings.NewReader(legacyTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := EncodeInstance(&buf1, in); err != nil {
		t.Fatal(err)
	}
	in2, err := ParseInstance(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing encoded instance: %v", err)
	}
	var buf2 bytes.Buffer
	if err := EncodeInstance(&buf2, in2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("EncodeInstance is not byte-stable across a parse round trip")
	}
	if len(in2.Tasks) != len(in.Tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(in2.Tasks), len(in.Tasks))
	}
	for i := range in.Tasks {
		if in.Tasks[i].Runtime != in2.Tasks[i].Runtime {
			t.Errorf("task %s runtime drifted: %v vs %v",
				in.Tasks[i].ID, in.Tasks[i].Runtime, in2.Tasks[i].Runtime)
		}
	}
}
