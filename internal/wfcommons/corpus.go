package wfcommons

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ManifestEntry describes one corpus system: where it comes from (one
// or more trace files, a recipe, or a scaled trace) and how it is
// converted. Exactly one of Sources, Recipe, or Scale must be set.
type ManifestEntry struct {
	// Name identifies the system; it becomes the workflow name.
	Name string `json:"name"`
	// Out is the wfjson output path relative to the corpus directory.
	Out string `json:"out"`
	// Sources lists WfCommons trace files (relative to the corpus
	// directory) converted together: multiplicity across the traces
	// yields branch frequencies.
	Sources []string `json:"sources,omitempty"`
	// Recipe generates a parametric instance from a built-in family.
	Recipe string `json:"recipe,omitempty"`
	// Scale generates a parametric variant of a source trace file.
	Scale string `json:"scale,omitempty"`
	// Tasks and Fanout parameterize Recipe/Scale generation.
	Tasks  int     `json:"tasks,omitempty"`
	Fanout float64 `json:"fanout,omitempty"`
	// Seed makes generation reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// TimeUnit/TargetRho override the conversion defaults.
	TimeUnit  float64 `json:"time_unit,omitempty"`
	TargetRho float64 `json:"target_rho,omitempty"`
}

// Manifest is corpus/manifest.json: the recorded recipe for every
// checked-in system, so `make corpus-check` can re-derive the corpus
// and diff it against the tree.
type Manifest struct {
	Systems []ManifestEntry `json:"systems"`
}

// LoadManifest reads dir/manifest.json.
func LoadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("wfcommons: parsing manifest: %w", err)
	}
	seen := map[string]bool{}
	for i, e := range m.Systems {
		if e.Name == "" || e.Out == "" {
			return nil, fmt.Errorf("wfcommons: manifest entry %d needs name and out", i)
		}
		if seen[e.Out] {
			return nil, fmt.Errorf("wfcommons: manifest entry %q: duplicate out %q", e.Name, e.Out)
		}
		seen[e.Out] = true
		set := 0
		if len(e.Sources) > 0 {
			set++
		}
		if e.Recipe != "" {
			set++
		}
		if e.Scale != "" {
			set++
		}
		if set != 1 {
			return nil, fmt.Errorf("wfcommons: manifest entry %q: exactly one of sources, recipe, or scale must be set", e.Name)
		}
	}
	return &m, nil
}

// BuildEntry derives one corpus system's canonical wfjson bytes from
// its manifest entry. Deterministic: the same manifest and sources
// always produce the same bytes.
func BuildEntry(dir string, e ManifestEntry) ([]byte, *Converted, error) {
	var instances []*Instance
	switch {
	case len(e.Sources) > 0:
		for _, src := range e.Sources {
			f, err := os.Open(filepath.Join(dir, src))
			if err != nil {
				return nil, nil, err
			}
			in, err := ParseInstance(f)
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("wfcommons: %s: %w", src, err)
			}
			instances = append(instances, in)
		}
	case e.Recipe != "":
		in, err := GenerateInstance(e.Recipe, GenParams{Tasks: e.Tasks, Fanout: e.Fanout, Seed: e.Seed})
		if err != nil {
			return nil, nil, fmt.Errorf("wfcommons: entry %q: %w", e.Name, err)
		}
		instances = append(instances, in)
	case e.Scale != "":
		f, err := os.Open(filepath.Join(dir, e.Scale))
		if err != nil {
			return nil, nil, err
		}
		base, err := ParseInstance(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("wfcommons: %s: %w", e.Scale, err)
		}
		in, err := ScaleInstance(base, GenParams{Tasks: e.Tasks, Fanout: e.Fanout, Seed: e.Seed})
		if err != nil {
			return nil, nil, fmt.Errorf("wfcommons: entry %q: %w", e.Name, err)
		}
		instances = append(instances, in)
	}

	conv, err := Convert(instances, Options{
		Name:      e.Name,
		TimeUnit:  e.TimeUnit,
		TargetRho: e.TargetRho,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("wfcommons: entry %q: %w", e.Name, err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(conv.Doc); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), conv, nil
}

// Mismatch reports one corpus file whose checked-in bytes differ from
// the manifest-derived bytes (or that is missing entirely).
type Mismatch struct {
	Name string
	Out  string
	Err  string
}

// CheckCorpus re-derives every manifest entry and compares it with the
// checked-in file, returning the mismatches (nil means the corpus is
// exactly reproducible).
func CheckCorpus(dir string) ([]Mismatch, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var out []Mismatch
	for _, e := range m.Systems {
		want, _, err := BuildEntry(dir, e)
		if err != nil {
			out = append(out, Mismatch{Name: e.Name, Out: e.Out, Err: err.Error()})
			continue
		}
		got, err := os.ReadFile(filepath.Join(dir, e.Out))
		if err != nil {
			out = append(out, Mismatch{Name: e.Name, Out: e.Out, Err: err.Error()})
			continue
		}
		if !bytes.Equal(want, got) {
			out = append(out, Mismatch{Name: e.Name, Out: e.Out,
				Err: fmt.Sprintf("checked-in file differs from manifest-derived conversion (%d vs %d bytes)", len(got), len(want))})
		}
	}
	return out, nil
}

// RebuildCorpus regenerates every manifest entry into the corpus
// directory, creating output directories as needed, and returns the
// written paths sorted.
func RebuildCorpus(dir string) ([]string, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range m.Systems {
		buf, _, err := BuildEntry(dir, e)
		if err != nil {
			return nil, err
		}
		p := filepath.Join(dir, e.Out)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}
