// Package wfcommons imports WfCommons-format scientific-workflow
// instances (JSON task graphs with measured runtimes and dependencies;
// see PAPERS.md: WfCommons, WfBench) and converts them into the spec/
// statechart systems the analytic stack consumes, following the paper's
// Section 3 abstraction: tasks become activity states, dependency
// fan-out collapses into parallel subworkflows, measured runtimes become
// residence-time moments, and trace multiplicity becomes branch
// frequency. A WfBench-style seeded generator produces parametric
// variants of the imported topologies at arbitrary task counts and
// fan-out degrees, and a manifest-driven builder maintains the
// checked-in corpus under corpus/.
//
// Two WfCommons schema generations are accepted: the legacy shape
// (workflow.tasks carrying runtime/runtimeInSeconds inline) and the
// 1.4+ split shape (workflow.specification.tasks for the graph,
// workflow.execution.tasks for the measured runtimes, joined by task
// id). Task references may use ids or names; parents and children are
// reconciled into one symmetric dependency set.
package wfcommons

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strings"

	"performa/internal/wfmserr"
)

// Task is one node of an imported workflow instance.
type Task struct {
	// ID uniquely identifies the task within the instance.
	ID string
	// Name is the display name (defaults to ID).
	Name string
	// Category groups tasks of the same program/transformation. When
	// the trace carries no explicit category it is derived from the
	// name by stripping trailing numeric/id suffixes.
	Category string
	// Runtime is the measured execution time in trace seconds.
	Runtime float64
	// Parents and Children hold the ids of dependency neighbors,
	// sorted, with both directions reconciled.
	Parents  []string
	Children []string
	// Machine optionally names the compute node the task ran on.
	Machine string
}

// Machine is an optional compute-node spec carried by the trace.
type Machine struct {
	Name     string  `json:"name"`
	Cores    int     `json:"cores,omitempty"`
	SpeedMHz float64 `json:"speed_mhz,omitempty"`
}

// Instance is a parsed and validated WfCommons workflow instance: an
// acyclic task graph with runtimes.
type Instance struct {
	// Name is the instance (workflow) name.
	Name string
	// SchemaVersion is the declared WfCommons schema version, if any.
	SchemaVersion string
	// Tasks holds the tasks sorted by id.
	Tasks []*Task
	// Machines holds the optional machine specs, sorted by name.
	Machines []Machine

	byID map[string]*Task
}

// Task returns the task with the given id.
func (in *Instance) Task(id string) (*Task, bool) {
	t, ok := in.byID[id]
	return t, ok
}

// wire structures: the union of the legacy and 1.4+ schemas.

type wcDoc struct {
	Name          string     `json:"name"`
	SchemaVersion string     `json:"schemaVersion"`
	Workflow      wcWorkflow `json:"workflow"`
}

type wcWorkflow struct {
	Tasks         []wcTask    `json:"tasks"`
	Jobs          []wcTask    `json:"jobs"` // oldest traces say "jobs"
	Machines      []wcMachine `json:"machines"`
	Specification *wcSpec     `json:"specification"`
	Execution     *wcExec     `json:"execution"`
}

type wcSpec struct {
	Tasks []wcTask `json:"tasks"`
}

type wcExec struct {
	Tasks    []wcExecTask `json:"tasks"`
	Machines []wcMachine  `json:"machines"`
}

type wcTask struct {
	Name             string   `json:"name"`
	ID               string   `json:"id"`
	Category         string   `json:"category"`
	Runtime          *float64 `json:"runtime"`
	RuntimeInSeconds *float64 `json:"runtimeInSeconds"`
	Children         []string `json:"children"`
	Parents          []string `json:"parents"`
	Machine          string   `json:"machine"`
}

type wcExecTask struct {
	ID               string   `json:"id"`
	Name             string   `json:"name"`
	Runtime          *float64 `json:"runtime"`
	RuntimeInSeconds *float64 `json:"runtimeInSeconds"`
	Machine          string   `json:"machine"`
}

type wcMachine struct {
	NodeName string  `json:"nodeName"`
	Name     string  `json:"name"`
	Cores    int     `json:"cores"`
	CPU      *wcCPU  `json:"cpu"`
	SpeedMHz float64 `json:"speed"`
}

type wcCPU struct {
	Count int     `json:"count"`
	Speed float64 `json:"speed"`
}

// invalid builds the package's typed validation error: every defect a
// trace file can carry maps to CodeInvalidModel so CLIs and the server
// classify importer rejections exactly like other model rejections.
func invalid(format string, args ...any) error {
	return wfmserr.New(wfmserr.CodeInvalidModel, "wfcommons", format, args...)
}

// ParseInstance reads one WfCommons-format JSON document and returns
// the validated instance. Defects — no tasks, duplicate ids, dangling
// dependency references, dependency cycles, missing or non-positive
// runtimes — are reported as typed invalid_model errors.
func ParseInstance(r io.Reader) (*Instance, error) {
	dec := json.NewDecoder(r)
	var doc wcDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, wfmserr.Wrap(err, wfmserr.CodeInvalidModel, "wfcommons", "parsing trace document")
	}
	return fromDoc(&doc)
}

func fromDoc(doc *wcDoc) (*Instance, error) {
	in := &Instance{
		Name:          doc.Name,
		SchemaVersion: doc.SchemaVersion,
		byID:          make(map[string]*Task),
	}
	if in.Name == "" {
		in.Name = "workflow"
	}

	raw := doc.Workflow.Tasks
	if len(raw) == 0 {
		raw = doc.Workflow.Jobs
	}
	if doc.Workflow.Specification != nil && len(doc.Workflow.Specification.Tasks) > 0 {
		raw = doc.Workflow.Specification.Tasks
	}
	if len(raw) == 0 {
		return nil, invalid("instance %q has no tasks", in.Name)
	}

	// Execution-side runtimes (1.4+ split schema), joined by id or name.
	execRuntime := map[string]float64{}
	execMachine := map[string]string{}
	if doc.Workflow.Execution != nil {
		for _, et := range doc.Workflow.Execution.Tasks {
			key := et.ID
			if key == "" {
				key = et.Name
			}
			if v := runtimeOf(et.Runtime, et.RuntimeInSeconds); v != nil {
				execRuntime[key] = *v
			}
			if et.Machine != "" {
				execMachine[key] = et.Machine
			}
		}
	}

	// First pass: build tasks keyed by id (falling back to name) and a
	// name→id alias table for legacy traces that reference by name.
	alias := map[string]string{}
	for i, rt := range raw {
		id := rt.ID
		if id == "" {
			id = rt.Name
		}
		if id == "" {
			return nil, invalid("instance %q: task %d has neither id nor name", in.Name, i)
		}
		if _, dup := in.byID[id]; dup {
			return nil, invalid("instance %q: duplicate task id %q", in.Name, id)
		}
		t := &Task{ID: id, Name: rt.Name, Category: rt.Category, Machine: rt.Machine}
		if t.Name == "" {
			t.Name = id
		}
		if t.Category == "" {
			t.Category = deriveCategory(t.Name)
		}
		if rv := runtimeOf(rt.Runtime, rt.RuntimeInSeconds); rv != nil {
			t.Runtime = *rv
		} else if rv, ok := execRuntime[id]; ok {
			t.Runtime = rv
		} else if rv, ok := execRuntime[t.Name]; ok {
			t.Runtime = rv
		} else {
			return nil, invalid("instance %q: task %q has no measured runtime", in.Name, id)
		}
		if math.IsNaN(t.Runtime) || math.IsInf(t.Runtime, 0) || t.Runtime <= 0 {
			return nil, invalid("instance %q: task %q runtime %v must be positive and finite", in.Name, id, t.Runtime)
		}
		if t.Machine == "" {
			if m, ok := execMachine[id]; ok {
				t.Machine = m
			}
		}
		in.byID[id] = t
		in.Tasks = append(in.Tasks, t)
		if rt.Name != "" && rt.Name != id {
			if _, clash := alias[rt.Name]; !clash {
				alias[rt.Name] = id
			}
		}
	}

	// Second pass: resolve dependency references (by id, then by name
	// alias) and reconcile parents/children into one symmetric set.
	resolve := func(owner, ref string) (string, error) {
		if _, ok := in.byID[ref]; ok {
			return ref, nil
		}
		if id, ok := alias[ref]; ok {
			return id, nil
		}
		return "", invalid("instance %q: task %q references unknown task %q", in.Name, owner, ref)
	}
	edges := map[[2]string]bool{} // parent → child
	for _, rt := range raw {
		id := rt.ID
		if id == "" {
			id = rt.Name
		}
		for _, c := range rt.Children {
			cid, err := resolve(id, c)
			if err != nil {
				return nil, err
			}
			edges[[2]string{id, cid}] = true
		}
		for _, p := range rt.Parents {
			pid, err := resolve(id, p)
			if err != nil {
				return nil, err
			}
			edges[[2]string{pid, id}] = true
		}
	}
	for e := range edges {
		if e[0] == e[1] {
			return nil, invalid("instance %q: task %q depends on itself", in.Name, e[0])
		}
		in.byID[e[0]].Children = append(in.byID[e[0]].Children, e[1])
		in.byID[e[1]].Parents = append(in.byID[e[1]].Parents, e[0])
	}

	sort.Slice(in.Tasks, func(i, j int) bool { return in.Tasks[i].ID < in.Tasks[j].ID })
	for _, t := range in.Tasks {
		sort.Strings(t.Parents)
		sort.Strings(t.Children)
	}

	if err := in.checkAcyclic(); err != nil {
		return nil, err
	}

	// Machines: legacy and execution-side lists, deduplicated by name.
	seen := map[string]bool{}
	addMachine := func(m wcMachine) {
		name := m.NodeName
		if name == "" {
			name = m.Name
		}
		if name == "" || seen[name] {
			return
		}
		seen[name] = true
		mm := Machine{Name: name, Cores: m.Cores, SpeedMHz: m.SpeedMHz}
		if m.CPU != nil {
			if mm.Cores == 0 {
				mm.Cores = m.CPU.Count
			}
			if mm.SpeedMHz == 0 {
				mm.SpeedMHz = m.CPU.Speed
			}
		}
		in.Machines = append(in.Machines, mm)
	}
	for _, m := range doc.Workflow.Machines {
		addMachine(m)
	}
	if doc.Workflow.Execution != nil {
		for _, m := range doc.Workflow.Execution.Machines {
			addMachine(m)
		}
	}
	sort.Slice(in.Machines, func(i, j int) bool { return in.Machines[i].Name < in.Machines[j].Name })

	return in, nil
}

func runtimeOf(runtime, runtimeInSeconds *float64) *float64 {
	if runtimeInSeconds != nil {
		return runtimeInSeconds
	}
	return runtime
}

// checkAcyclic runs Kahn's algorithm; leftover tasks form a cycle.
func (in *Instance) checkAcyclic() error {
	indeg := make(map[string]int, len(in.Tasks))
	for _, t := range in.Tasks {
		indeg[t.ID] = len(t.Parents)
	}
	queue := make([]string, 0, len(in.Tasks))
	for _, t := range in.Tasks { // sorted order keeps this deterministic
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
		}
	}
	done := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		done++
		for _, c := range in.byID[id].Children {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if done != len(in.Tasks) {
		var stuck []string
		for _, t := range in.Tasks {
			if indeg[t.ID] > 0 {
				stuck = append(stuck, t.ID)
				if len(stuck) == 4 {
					break
				}
			}
		}
		return invalid("instance %q: dependency cycle through %s", in.Name, strings.Join(stuck, ", "))
	}
	return nil
}

// Levels returns the topological depth of every task: roots sit at
// level 0, every other task one past its deepest parent. The level
// assignment is the backbone of the converter's collapse policy.
func (in *Instance) Levels() map[string]int {
	level := make(map[string]int, len(in.Tasks))
	// Tasks sorted by id do not imply topological order; iterate to a
	// fixed point level-by-level using Kahn order instead.
	indeg := make(map[string]int, len(in.Tasks))
	var queue []string
	for _, t := range in.Tasks {
		indeg[t.ID] = len(t.Parents)
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
			level[t.ID] = 0
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range in.byID[id].Children {
			if l := level[id] + 1; l > level[c] {
				level[c] = l
			}
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return level
}

// deriveCategory strips trailing numeric/id suffixes from a task name:
// "individuals_00000023" → "individuals", "mProject_ID0007" →
// "mProject". The rule is deterministic and errs toward keeping the
// name when no recognizable suffix exists.
func deriveCategory(name string) string {
	s := strings.TrimRight(name, "0123456789")
	s = strings.TrimRight(s, "_-.")
	if t := strings.TrimSuffix(strings.TrimSuffix(s, "ID"), "id"); t != s {
		s = strings.TrimRight(t, "_-.")
	}
	if s == "" {
		return name
	}
	return s
}

// EncodeInstance writes the instance back out in WfCommons legacy
// format (workflow.tasks with inline runtimes), deterministically: the
// generator uses it to emit corpus source traces, and re-encoding a
// parsed instance is byte-stable.
func EncodeInstance(w io.Writer, in *Instance) error {
	doc := struct {
		Name          string `json:"name"`
		SchemaVersion string `json:"schemaVersion"`
		Workflow      struct {
			Machines []wcMachine `json:"machines,omitempty"`
			Tasks    []wcTask    `json:"tasks"`
		} `json:"workflow"`
	}{Name: in.Name, SchemaVersion: "1.3"}
	for _, m := range in.Machines {
		doc.Workflow.Machines = append(doc.Workflow.Machines, wcMachine{
			NodeName: m.Name, Cores: m.Cores, SpeedMHz: m.SpeedMHz,
		})
	}
	for _, t := range in.Tasks {
		rt := t.Runtime
		jt := wcTask{
			Name:             t.Name,
			ID:               t.ID,
			Category:         t.Category,
			RuntimeInSeconds: &rt,
			Children:         append([]string(nil), t.Children...),
			Parents:          append([]string(nil), t.Parents...),
			Machine:          t.Machine,
		}
		doc.Workflow.Tasks = append(doc.Workflow.Tasks, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
