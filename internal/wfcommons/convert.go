package wfcommons

import (
	"fmt"
	"math"
	"sort"

	"performa/internal/spec"
	"performa/internal/statechart"
	"performa/internal/wfjson"
)

// Options tunes the trace→spec conversion. The zero value selects the
// documented defaults (DESIGN.md §12); every default is deterministic.
type Options struct {
	// Name overrides the workflow name (default: the instance name).
	Name string
	// TimeUnit is the number of trace seconds per model time unit
	// (default 60: models run in minutes, like the examples).
	TimeUnit float64
	// TargetRho is the maximum per-replica utilization the arrival
	// rate is scaled to, assuming Replicas servers per type (default
	// 0.30 — loaded enough for measurable waiting, stable enough for
	// every solver and the simulator).
	TargetRho float64
	// Replicas is the per-type replica count assumed by the arrival
	// scaling (default DefaultReplicas).
	Replicas int
	// MaxComputeTypes bounds the number of application server types
	// synthesized from the task categories (default 3): categories are
	// clustered into runtime bands, widest-gap first.
	MaxComputeTypes int
	// MaxBranches bounds the orthogonal branches of one collapsed
	// parallel level (default 6); excess categories merge into a
	// pooled "mixed" branch.
	MaxBranches int
	// MaxStages caps the Erlang stage expansion estimated from the
	// pooled runtime second moments (default 192): a pooled fan-out
	// wants ≈ one stage per task so its requests spread over the whole
	// serial execution with ≲ 1 request per stage — bursts of several
	// requests inside one exponential stage draw are exactly what the
	// analytic Poisson-arrival model cannot see.
	MaxStages int
	// MaxSCV caps the service-time squared coefficient of variation of
	// synthesized server types (default 4).
	MaxSCV float64
	// Dilation stretches every collapsed level's residence time beyond
	// its serial work (default 24): tasks on a shared cluster do not run
	// back to back, and the stretch puts the converted system in the
	// many-concurrent-instances regime where each instance offers a
	// small fraction of one server and the aggregate request process is
	// near-Poisson — the operating region of the paper's queueing model
	// (and of the differential harness's tolerances).
	Dilation float64
	// EngineServiceFrac sizes the workflow-engine service time as a
	// fraction of the global mean task runtime (default 0.02).
	EngineServiceFrac float64
	// MTTF and MTTR are the per-server failure and repair times in
	// model time units applied to every synthesized type (defaults
	// 2000 and 4; traces carry no failure data). MTTF 0 disables
	// failures.
	MTTF, MTTR float64
}

// DefaultReplicas is the per-type replica count corpus tooling assumes
// when a converted document is checked or assessed: conversion scales
// arrival rates so this configuration sits at Options.TargetRho.
const DefaultReplicas = 2

func (o *Options) setDefaults() {
	if o.TimeUnit <= 0 {
		o.TimeUnit = 60
	}
	if o.TargetRho <= 0 {
		o.TargetRho = 0.30
	}
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.MaxComputeTypes <= 0 {
		o.MaxComputeTypes = 3
	}
	if o.MaxBranches <= 0 {
		o.MaxBranches = 6
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 192
	}
	if o.MaxSCV <= 0 {
		o.MaxSCV = 4
	}
	if o.Dilation <= 0 {
		o.Dilation = 24
	}
	if o.EngineServiceFrac <= 0 {
		o.EngineServiceFrac = 0.02
	}
	if o.MTTF == 0 && o.MTTR == 0 {
		o.MTTF, o.MTTR = 2000, 4
	}
}

// Converted is the result of one conversion: the validated model inputs
// plus the canonical wfjson document and collapse statistics.
type Converted struct {
	Env  *spec.Environment
	Flow *spec.Workflow
	Doc  *wfjson.Document
	// Stats summarizes the collapse.
	Stats ConvertStats
}

// ConvertStats reports how the trace collapsed.
type ConvertStats struct {
	Instances   int
	Tasks       int
	Levels      int
	Parallel    int // levels collapsed into orthogonal subworkflows
	Optional    int // levels entered with probability < 1
	Activities  int
	ServerTypes int
}

// group aggregates the tasks of one (level, category) cell across every
// imported instance: the unit that becomes one activity.
type group struct {
	level    int
	category string

	samples  int     // task executions pooled
	sumRT    float64 // Σ runtime (trace seconds)
	sumRT2   float64 // Σ runtime²
	presence int     // instances containing the group
	sumCount int     // Σ per-instance multiplicity (over present instances)
}

func (g *group) meanRT() float64 { return g.sumRT / float64(g.samples) }

func (g *group) scv() float64 {
	m := g.meanRT()
	if m <= 0 || g.samples < 2 {
		return 1
	}
	m2 := g.sumRT2 / float64(g.samples)
	scv := m2/(m*m) - 1
	if scv < 0 {
		scv = 0
	}
	return scv
}

// meanMult is the mean multiplicity over the instances that contain the
// group (the fan-out degree of the collapsed branch).
func (g *group) meanMult() float64 { return float64(g.sumCount) / float64(g.presence) }

// Convert maps one or more WfCommons instances of the same workflow
// type onto a spec/statechart system per the paper's §3 abstraction.
// The collapse policy is deterministic and documented in DESIGN.md §12:
//
//   - Tasks are grouped by (topological level, category). Each group
//     becomes one activity whose mean duration is the group's serial
//     work (mean multiplicity × mean task runtime) and whose Erlang
//     stage count is estimated from the pooled runtime second moment.
//   - A level with one group becomes a plain activity state; a level
//     with several groups becomes a state embedding one orthogonal
//     subchart per group — the paper's parallel subworkflow, whose
//     collapsed residence time is the maximum of the branch
//     turnarounds (AND-join policy, spec.Build §4.2.2).
//   - Branch frequencies come from trace multiplicity: with several
//     imported instances, a single-group level present in only m of n
//     instances is entered with probability m/n and skipped otherwise;
//     optional groups inside parallel levels fold their frequency into
//     the branch's expected load instead. Levels are aligned across
//     instances first: a category occupying one level per instance
//     anchors at its deepest observed level, so a stage skipped by some
//     runs surfaces as an optional level instead of shifting the levels
//     of everything downstream.
//   - Server types are synthesized from the runtime distribution:
//     categories cluster into at most MaxComputeTypes application
//     types (runtime bands split at the widest log-mean gaps) plus one
//     workflow-engine type; each task contributes one engine request
//     and runtime/service work-preserving compute requests.
//   - The arrival rate is scaled so the bottleneck type sits at
//     TargetRho per replica under the assumed replica count.
func Convert(instances []*Instance, opts Options) (*Converted, error) {
	opts.setDefaults()
	if len(instances) == 0 {
		return nil, invalid("no instances to convert")
	}
	name := opts.Name
	if name == "" {
		name = instances[0].Name
	}

	// Align levels across instances: a stage skipped by some runs shifts
	// the raw topological levels of everything downstream in the runs
	// that include it. A category occupying exactly one level in every
	// instance therefore anchors at its deepest observed level, so the
	// shared tail of the runs pools into shared groups and the skipped
	// stage surfaces as an optional level. Categories spanning several
	// levels within one instance (chained same-category stages) keep
	// their raw levels — anchoring would fold the chain.
	multi := map[string]bool{}
	canonical := map[string]int{}
	instLevels := make([]map[string]int, len(instances))
	for i, in := range instances {
		if len(in.Tasks) == 0 {
			return nil, invalid("instance %q has no tasks", in.Name)
		}
		instLevels[i] = in.Levels()
		seen := map[string]int{} // category → first level in this instance
		for _, t := range in.Tasks {
			l := instLevels[i][t.ID]
			if prev, ok := seen[t.Category]; ok && prev != l {
				multi[t.Category] = true
			} else {
				seen[t.Category] = l
			}
			if l > canonical[t.Category] {
				canonical[t.Category] = l
			}
		}
	}

	// Pool (level, category) groups across instances.
	groups := map[[2]string]*group{} // key: (zero-padded level, category)
	var maxLevel int
	totalTasks := 0
	for i, in := range instances {
		levels := instLevels[i]
		perInstance := map[[2]string]int{}
		for _, t := range in.Tasks {
			// ParseInstance guarantees this; re-check for instances built
			// in code so bad runtimes become typed errors, never NaN
			// moments.
			if math.IsNaN(t.Runtime) || math.IsInf(t.Runtime, 0) || t.Runtime <= 0 {
				return nil, invalid("instance %q: task %q runtime %v must be positive and finite", in.Name, t.ID, t.Runtime)
			}
			l := levels[t.ID]
			if !multi[t.Category] {
				l = canonical[t.Category]
			}
			if l > maxLevel {
				maxLevel = l
			}
			key := [2]string{fmt.Sprintf("%06d", l), t.Category}
			g := groups[key]
			if g == nil {
				g = &group{level: l, category: t.Category}
				groups[key] = g
			}
			g.samples++
			g.sumRT += t.Runtime
			g.sumRT2 += t.Runtime * t.Runtime
			perInstance[key]++
			totalTasks++
		}
		for key, c := range perInstance {
			groups[key].presence++
			groups[key].sumCount += c
		}
	}

	// Deterministic group order: by level, then category.
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].level != ordered[j].level {
			return ordered[i].level < ordered[j].level
		}
		return ordered[i].category < ordered[j].category
	})

	// Bucket the levels.
	byLevel := make([][]*group, maxLevel+1)
	for _, g := range ordered {
		byLevel[g.level] = append(byLevel[g.level], g)
	}

	// Cap parallel width: beyond MaxBranches-1 named branches the
	// remaining (narrowest-first) groups pool into one mixed branch.
	stats := ConvertStats{Instances: len(instances), Tasks: totalTasks / len(instances), Levels: maxLevel + 1}
	for l, gs := range byLevel {
		if len(gs) <= opts.MaxBranches {
			continue
		}
		sort.Slice(gs, func(i, j int) bool {
			if gs[i].sumCount != gs[j].sumCount {
				return gs[i].sumCount > gs[j].sumCount
			}
			return gs[i].category < gs[j].category
		})
		keep := gs[:opts.MaxBranches-1]
		mixed := &group{level: l, category: "mixed", presence: len(instances)}
		for _, g := range gs[opts.MaxBranches-1:] {
			mixed.samples += g.samples
			mixed.sumRT += g.sumRT
			mixed.sumRT2 += g.sumRT2
			mixed.sumCount += g.sumCount
		}
		gs = append(append([]*group(nil), keep...), mixed)
		sort.Slice(gs, func(i, j int) bool { return gs[i].category < gs[j].category })
		byLevel[l] = gs
	}

	// Synthesize the environment from the (possibly merged) groups.
	var final []*group
	for _, gs := range byLevel {
		final = append(final, gs...)
	}
	env, computeType, err := synthesizeEnvironment(final, opts)
	if err != nil {
		return nil, err
	}
	stats.ServerTypes = env.K()
	stats.Activities = len(final)

	// Build the chart: a chain over levels with probabilistic skip
	// edges for optional levels.
	n := len(instances)
	chart := &statechart.Chart{
		Name:    name,
		Initial: "init",
		Final:   "done",
		States: map[string]*statechart.State{
			"init": {Name: "init"},
			"done": {Name: "done"},
		},
	}
	profiles := make(map[string]spec.ActivityProfile)

	type levelNode struct {
		state string
		prob  float64 // probability the level executes (m/n)
	}
	var nodes []levelNode
	for l, gs := range byLevel {
		if len(gs) == 0 {
			continue
		}
		stateName := fmt.Sprintf("L%02d_%s", l, gs[0].category)
		prob := 1.0
		st := &statechart.State{Name: stateName}
		if len(gs) == 1 {
			g := gs[0]
			act := activityName(g)
			st.Activity = act
			profiles[act] = makeProfile(act, g, false, n, env, computeType, opts)
			if g.presence < n {
				prob = float64(g.presence) / float64(n)
				stats.Optional++
			}
		} else {
			// Parallel level: one orthogonal subchart per group. A
			// group absent from some instances keeps probability one in
			// the chart; its frequency folds into the expected load.
			stateName = fmt.Sprintf("L%02d_par", l)
			st.Name = stateName
			stats.Parallel++
			for _, g := range gs {
				act := activityName(g)
				profiles[act] = makeProfile(act, g, true, n, env, computeType, opts)
				sub := &statechart.Chart{
					Name:    fmt.Sprintf("%s_%s", stateName, g.category),
					Initial: "init",
					Final:   "done",
					States: map[string]*statechart.State{
						"init": {Name: "init"},
						"run":  {Name: "run", Activity: act},
						"done": {Name: "done"},
					},
					Transitions: []*statechart.Transition{
						{From: "init", To: "run", Prob: 1},
						{From: "run", To: "done", Prob: 1},
					},
				}
				st.Subcharts = append(st.Subcharts, sub)
			}
		}
		chart.States[st.Name] = st
		nodes = append(nodes, levelNode{state: st.Name, prob: prob})
	}
	if len(nodes) == 0 {
		return nil, invalid("instance %q collapses to no activity levels", name)
	}

	// Transitions: from each anchor (init or a level state), enter the
	// next level with its presence probability, or skip past it — the
	// skip mass cascades over consecutive optional levels.
	addOutgoing := func(from string, start int) {
		rem := 1.0
		for j := start; j < len(nodes); j++ {
			p := rem * nodes[j].prob
			if p > 0 {
				chart.Transitions = append(chart.Transitions,
					&statechart.Transition{From: from, To: nodes[j].state, Prob: p})
			}
			rem -= p
			if rem <= 1e-12 {
				return
			}
		}
		if rem > 0 {
			chart.Transitions = append(chart.Transitions,
				&statechart.Transition{From: from, To: "done", Prob: rem})
		}
	}
	addOutgoing("init", 0)
	for i := range nodes {
		addOutgoing(nodes[i].state, i+1)
	}

	flow := &spec.Workflow{
		Name:        name,
		Chart:       chart,
		Profiles:    profiles,
		ArrivalRate: 1, // provisional; scaled to TargetRho below
	}

	model, err := spec.Build(flow, env)
	if err != nil {
		return nil, fmt.Errorf("wfcommons: building model for %q: %w", name, err)
	}

	// Scale the arrival rate so the bottleneck type runs at TargetRho
	// per replica under the assumed configuration.
	req := model.ExpectedRequests()
	maxRho := 0.0
	for x := 0; x < env.K(); x++ {
		rho := req[x] * env.Type(x).MeanService / float64(opts.Replicas)
		if rho > maxRho {
			maxRho = rho
		}
	}
	if !(maxRho > 0) {
		return nil, invalid("converted system %q induces no load on any server type", name)
	}
	flow.ArrivalRate = opts.TargetRho / maxRho

	doc, err := wfjson.ToDocument(env, []*spec.Workflow{flow})
	if err != nil {
		return nil, fmt.Errorf("wfcommons: encoding %q: %w", name, err)
	}
	// The document stores scv, the environment stores the second moment;
	// the round trip reintroduces float noise around the snapped values
	// (0.4999999999999998). Snap half-integer scv back for clean corpus
	// files — ServiceDists' 1e-9 tolerance accepts either form.
	for i := range doc.Environment.Types {
		t := &doc.Environment.Types[i]
		if half := math.Round(t.ServiceSCV*2) / 2; math.Abs(t.ServiceSCV-half) < 1e-9 {
			t.ServiceSCV = half
		}
	}
	return &Converted{Env: env, Flow: flow, Doc: doc, Stats: stats}, nil
}

func activityName(g *group) string {
	return fmt.Sprintf("%s.l%02d", g.category, g.level)
}

// makeProfile maps one group onto an activity profile. The pooled
// activity's residence time is the group's serial work — multiplicity ×
// mean task runtime — not a single task's runtime: the activity issues
// one engine and ≈ one compute request per task, and the simulator
// spreads requests uniformly over the residence, so serial-work
// residence keeps the instantaneous offered load near one server per
// active instance, inside the moderate-burst region the analytic
// queueing model (and the paper's measured systems) assume. Erlang
// stages come from the pooled sum's SCV: summing mult i.i.d. runtimes
// divides the single-task SCV by the multiplicity.
func makeProfile(act string, g *group, parallel bool, instances int, env *spec.Environment, computeType map[string]string, opts Options) spec.ActivityProfile {
	mult := g.meanMult()
	if parallel && g.presence < instances {
		// Optional branch inside a parallel level: frequency folds into
		// the expected fan-out degree.
		mult *= float64(g.presence) / float64(instances)
	}
	mean := g.meanRT() / opts.TimeUnit
	duration := mult * mean * opts.Dilation
	// Erlang-k residence with k ≈ mult/scv models the serial sum of the
	// pooled tasks; the load divides across the stages (spec.Build), so
	// each stage issues ≈ load/k requests over one task-sized window —
	// the renewal-like request process the queueing model assumes.
	scvSum := g.scv() / math.Max(mult, 1)
	stages := int(math.Round(1 / math.Max(scvSum, 1.0/float64(opts.MaxStages))))
	if stages > opts.MaxStages {
		stages = opts.MaxStages
	}
	if stages < 1 {
		stages = 1
	}
	ct := computeType[g.category]
	x, _ := env.Index(ct)
	load := map[string]float64{
		engineTypeName: mult,
		ct:             mult * mean / env.Type(x).MeanService,
	}
	return spec.ActivityProfile{
		Name:           act,
		MeanDuration:   duration,
		DurationStages: stages,
		Load:           load,
	}
}

const engineTypeName = "wf-engine"

// synthesizeEnvironment clusters the groups' categories into at most
// MaxComputeTypes application server types by runtime band (split at
// the widest gaps in log mean runtime) plus one workflow-engine type,
// and returns the environment and the category→type assignment.
func synthesizeEnvironment(groups []*group, opts Options) (*spec.Environment, map[string]string, error) {
	// Pool per category (a category can span several levels).
	type catStat struct {
		name    string
		samples int
		sumRT   float64
		sumRT2  float64
	}
	byCat := map[string]*catStat{}
	var totalRT float64
	var totalN int
	for _, g := range groups {
		c := byCat[g.category]
		if c == nil {
			c = &catStat{name: g.category}
			byCat[g.category] = c
		}
		c.samples += g.samples
		c.sumRT += g.sumRT
		c.sumRT2 += g.sumRT2
		totalRT += g.sumRT
		totalN += g.samples
	}
	cats := make([]*catStat, 0, len(byCat))
	for _, c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		mi := cats[i].sumRT / float64(cats[i].samples)
		mj := cats[j].sumRT / float64(cats[j].samples)
		if mi != mj {
			return mi < mj
		}
		return cats[i].name < cats[j].name
	})

	// Split the mean-runtime-sorted categories at the widest log gaps.
	nTypes := opts.MaxComputeTypes
	if nTypes > len(cats) {
		nTypes = len(cats)
	}
	type gap struct {
		at    int // split before cats[at]
		width float64
	}
	var gaps []gap
	for i := 1; i < len(cats); i++ {
		mi := cats[i-1].sumRT / float64(cats[i-1].samples)
		mj := cats[i].sumRT / float64(cats[i].samples)
		gaps = append(gaps, gap{at: i, width: math.Log(mj) - math.Log(mi)})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].width != gaps[j].width {
			return gaps[i].width > gaps[j].width
		}
		return gaps[i].at < gaps[j].at
	})
	splitAt := map[int]bool{}
	for i := 0; i < nTypes-1 && i < len(gaps); i++ {
		splitAt[gaps[i].at] = true
	}

	computeType := map[string]string{}
	var types []spec.ServerType
	bucketIdx := 0
	start := 0
	flush := func(end int) error {
		if end == start {
			return nil
		}
		name := fmt.Sprintf("compute%d", bucketIdx)
		var sumRT, sumRT2 float64
		var n int
		for _, c := range cats[start:end] {
			computeType[c.name] = name
			sumRT += c.sumRT
			sumRT2 += c.sumRT2
			n += c.samples
		}
		b := sumRT / float64(n) / opts.TimeUnit
		m2 := sumRT2 / float64(n) / (opts.TimeUnit * opts.TimeUnit)
		scv := 1.0
		if b > 0 {
			scv = m2/(b*b) - 1
		}
		// Snap to a simulable service distribution: Erlang-2 (0.5),
		// exponential (1), or hyperexponential (> 1, capped).
		switch {
		case scv < 0.75:
			scv = 0.5
		case scv <= 1.25:
			scv = 1
		case scv > opts.MaxSCV:
			scv = opts.MaxSCV
		}
		st := spec.ServerType{
			Name:                name,
			Kind:                spec.Application,
			MeanService:         b,
			ServiceSecondMoment: (1 + scv) * b * b,
		}
		if opts.MTTF > 0 {
			st.FailureRate = 1 / opts.MTTF
			st.RepairRate = 1 / opts.MTTR
		}
		types = append(types, st)
		bucketIdx++
		start = end
		return nil
	}
	for i := 1; i < len(cats); i++ {
		if splitAt[i] {
			if err := flush(i); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := flush(len(cats)); err != nil {
		return nil, nil, err
	}

	// Engine type: dispatch overhead, a small fraction of the global
	// mean task runtime.
	meanRT := totalRT / float64(totalN) / opts.TimeUnit
	eb := opts.EngineServiceFrac * meanRT
	if eb <= 0 {
		eb = 1e-6
	}
	engine := spec.ServerType{
		Name:                engineTypeName,
		Kind:                spec.Engine,
		MeanService:         eb,
		ServiceSecondMoment: 2 * eb * eb, // exponential
	}
	if opts.MTTF > 0 {
		engine.FailureRate = 1 / opts.MTTF
		engine.RepairRate = 1 / opts.MTTR
	}
	types = append([]spec.ServerType{engine}, types...)

	env, err := spec.NewEnvironment(types...)
	if err != nil {
		return nil, nil, fmt.Errorf("wfcommons: synthesized environment invalid: %w", err)
	}
	return env, computeType, nil
}

// Replicas returns the replica vector corpus tooling assumes for a
// converted environment: DefaultReplicas per type (what the arrival
// scaling targeted).
func Replicas(env *spec.Environment) []int {
	out := make([]int, env.K())
	for i := range out {
		out[i] = DefaultReplicas
	}
	return out
}
