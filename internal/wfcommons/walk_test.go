package wfcommons

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"performa/internal/spec"
	"performa/internal/wfjson"
)

// TestCorpusTreeComplete walks the whole corpus tree and cross-checks it
// against the manifest in both directions. The corpus tooling reaches
// files by glob and by manifest path, so a stray or misnamed file would
// otherwise be skipped silently — present in the repository but never
// validated, never rebuilt, never benched. The walk turns that silence
// into a failure.
func TestCorpusTreeComplete(t *testing.T) {
	dir := filepath.Join("..", "..", "corpus")
	man, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	outs := make(map[string]bool, len(man.Systems))
	srcs := map[string]bool{}
	for _, e := range man.Systems {
		outs[filepath.ToSlash(e.Out)] = true
		for _, s := range e.Sources {
			srcs[filepath.ToSlash(s)] = true
		}
		if e.Scale != "" {
			srcs[filepath.ToSlash(e.Scale)] = true
		}
	}

	seen := map[string]bool{}
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		seen[rel] = true
		switch {
		case rel == "README.md" || rel == "manifest.json":
		case strings.HasPrefix(rel, "systems/"):
			if !strings.HasSuffix(rel, ".wfjson") {
				t.Errorf("corpus/%s: not a .wfjson file; the systems glob would skip it silently", rel)
			} else if !outs[rel] {
				t.Errorf("corpus/%s: not listed in manifest.json; `wfmsimport -rebuild` would never regenerate it", rel)
			}
		case strings.HasPrefix(rel, "sources/"):
			if !srcs[rel] {
				t.Errorf("corpus/%s: not referenced by any manifest entry; converter regressions against it would go unnoticed", rel)
			}
		default:
			t.Errorf("corpus/%s: unexpected file; nothing in the corpus tooling would ever read it", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reverse direction: everything the manifest names must exist.
	for rel := range outs {
		if !seen[rel] {
			t.Errorf("manifest lists %s but the file is missing", rel)
		}
	}
	for rel := range srcs {
		if !seen[rel] {
			t.Errorf("manifest references source %s but the file is missing", rel)
		}
	}
}

// TestCorpusDocumentsRoundTrip re-validates every checked-in corpus
// system against the current wfjson schema and model builder: each file
// must decode under today's validation rules, build into spec models,
// and survive an encode/decode cycle both byte-for-byte and
// fingerprint-stable. This is the drift guard: a wfjson or spec change
// that invalidates checked-in documents fails here instead of surfacing
// as a confusing downstream error.
func TestCorpusDocumentsRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "corpus", "systems", "*.wfjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 20 {
		t.Fatalf("corpus has %d systems, want ≥ 20", len(paths))
	}
	for _, path := range paths {
		name := filepath.Base(path)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		env, flows, err := wfjson.Decode(strings.NewReader(string(raw)))
		if err != nil {
			t.Errorf("%s: fails current validation: %v", name, err)
			continue
		}
		for _, flow := range flows {
			if _, err := spec.Build(flow, env); err != nil {
				t.Errorf("%s: workflow %s no longer builds: %v", name, flow.Name, err)
			}
		}
		var buf strings.Builder
		if err := wfjson.Encode(&buf, env, flows); err != nil {
			t.Errorf("%s: re-encode: %v", name, err)
			continue
		}
		if buf.String() != string(raw) {
			t.Errorf("%s: decode/encode cycle changed the document; re-run `go run ./cmd/wfmsimport -rebuild corpus`", name)
		}
		fp1, err := wfjson.Fingerprint(env, flows)
		if err != nil {
			t.Fatal(err)
		}
		env2, flows2, err := wfjson.Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Errorf("%s: re-decode: %v", name, err)
			continue
		}
		fp2, err := wfjson.Fingerprint(env2, flows2)
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Errorf("%s: fingerprint drifts across a document round trip: %s vs %s", name, fp1, fp2)
		}
	}
}

// TestExamplesTreeComplete walks examples/: every example is a Go main
// package, and any model document that ever lands there must be valid
// wfjson — a data file nothing loads would otherwise rot silently.
func TestExamplesTreeComplete(t *testing.T) {
	dir := filepath.Join("..", "..", "examples")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Errorf("examples/%s: stray file at the top level", e.Name())
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), "main.go")); err != nil {
			t.Errorf("examples/%s: no main.go; not a runnable example", e.Name())
		}
	}
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(path, ".go") {
			return nil
		}
		ext := filepath.Ext(path)
		if ext != ".json" && ext != ".wfjson" {
			t.Errorf("%s: unexpected file in examples/; no test or example loads it", path)
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, _, err := wfjson.Decode(f); err != nil {
			t.Errorf("%s: example document fails current wfjson validation: %v", path, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
