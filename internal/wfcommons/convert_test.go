package wfcommons

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"performa/internal/spec"
	"performa/internal/wfjson"
)

// makeInstance builds an in-code instance from (id, category, runtime,
// children) rows, wiring parents symmetrically.
func makeInstance(name string, rows []struct {
	id       string
	category string
	runtime  float64
	children []string
}) *Instance {
	in := &Instance{Name: name, byID: map[string]*Task{}}
	for _, r := range rows {
		t := &Task{ID: r.id, Name: r.id, Category: r.category, Runtime: r.runtime}
		in.byID[r.id] = t
		in.Tasks = append(in.Tasks, t)
	}
	for _, r := range rows {
		for _, c := range r.children {
			in.byID[r.id].Children = append(in.byID[r.id].Children, c)
			in.byID[c].Parents = append(in.byID[c].Parents, r.id)
		}
	}
	return in
}

type row = struct {
	id       string
	category string
	runtime  float64
	children []string
}

func TestConvertNoInstances(t *testing.T) {
	_, err := Convert(nil, Options{})
	mustInvalid(t, err, "no instances")
}

func TestConvertEmptyInstance(t *testing.T) {
	in := &Instance{Name: "empty", byID: map[string]*Task{}}
	_, err := Convert([]*Instance{in}, Options{})
	mustInvalid(t, err, "no tasks")
}

func TestConvertSingleTask(t *testing.T) {
	in := makeInstance("one", []row{{id: "solo_1", category: "solo", runtime: 120}})
	conv, err := Convert([]*Instance{in}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if conv.Stats.Activities != 1 || conv.Stats.Levels != 1 {
		t.Errorf("stats = %+v", conv.Stats)
	}
	model, err := spec.Build(conv.Flow, conv.Env)
	if err != nil {
		t.Fatal(err)
	}
	ta := model.Turnaround()
	// 120 s at the default 60 s/unit is 2 units of serial work, dilated
	// by the default factor 24.
	if !(ta >= 48 && ta < 50) {
		t.Errorf("turnaround = %v, want ≈ 48", ta)
	}
}

// TestConvertDisconnectedSubgraphs: two independent chains share the
// levels, so each level collapses to a parallel state with one branch
// per chain.
func TestConvertDisconnectedSubgraphs(t *testing.T) {
	in := makeInstance("disc", []row{
		{id: "a_1", category: "a", runtime: 60, children: []string{"a_2"}},
		{id: "a_2", category: "aTail", runtime: 30},
		{id: "b_1", category: "b", runtime: 90, children: []string{"b_2"}},
		{id: "b_2", category: "bTail", runtime: 45},
	})
	conv, err := Convert([]*Instance{in}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if conv.Stats.Parallel != 2 {
		t.Errorf("want both levels parallel, stats = %+v", conv.Stats)
	}
	if _, err := spec.Build(conv.Flow, conv.Env); err != nil {
		t.Fatalf("disconnected-subgraph model does not build: %v", err)
	}
}

// TestConvertBadRuntimes: converter-level guard for instances built in
// code (parse already rejects these): typed error, never NaN moments.
func TestConvertBadRuntimes(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		in := makeInstance("bad", []row{{id: "x_1", category: "x", runtime: bad}})
		_, err := Convert([]*Instance{in}, Options{})
		mustInvalid(t, err, "must be positive")
	}
}

// TestConvertOptionalLevels: a level present in one of two imported
// instances is entered with probability 1/2; the skip mass cascades.
func TestConvertOptionalLevels(t *testing.T) {
	full := makeInstance("run1", []row{
		{id: "prep_1", category: "prep", runtime: 30, children: []string{"fix_1"}},
		{id: "fix_1", category: "fix", runtime: 60, children: []string{"pub_1"}},
		{id: "pub_1", category: "pub", runtime: 20},
	})
	short := makeInstance("run2", []row{
		{id: "prep_1", category: "prep", runtime: 34, children: []string{"pub_1"}},
		{id: "pub_1", category: "pub", runtime: 22},
	})
	conv, err := Convert([]*Instance{full, short}, Options{Name: "opt"})
	if err != nil {
		t.Fatal(err)
	}
	if conv.Stats.Optional < 1 {
		t.Fatalf("want ≥ 1 optional level, stats = %+v", conv.Stats)
	}
	// prep must branch: P(fix) = 1/2, and the remaining mass must land
	// on a later level, not vanish.
	var probs []float64
	for _, tr := range conv.Flow.Chart.Transitions {
		if tr.From == "L00_prep" {
			probs = append(probs, tr.Prob)
		}
	}
	if len(probs) != 2 {
		t.Fatalf("prep should have 2 outgoing branches, has %d", len(probs))
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("branch probabilities sum to %v", sum)
	}
	if _, err := spec.Build(conv.Flow, conv.Env); err != nil {
		t.Fatalf("optional-level model does not build: %v", err)
	}
}

// TestConvertDeterminism is the determinism pin the corpus depends on:
// same trace + seed → byte-identical wfjson, across fresh generation,
// encode/parse round trips, and repeated conversion.
func TestConvertDeterminism(t *testing.T) {
	encode := func(doc *wfjson.Document) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	gen := func() []byte {
		in, err := GenerateInstance("epidemiology", GenParams{Tasks: 70, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		conv, err := Convert([]*Instance{in}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return encode(conv.Doc)
	}
	first, second := gen(), gen()
	if !bytes.Equal(first, second) {
		t.Fatal("same recipe + seed produced different wfjson bytes")
	}

	// Through a trace-file round trip as well: emit the instance as a
	// WfCommons trace, re-parse, convert — still byte-identical.
	in, err := GenerateInstance("epidemiology", GenParams{Tasks: 70, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := EncodeInstance(&trace, in); err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseInstance(&trace)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Convert([]*Instance{reparsed}, Options{Name: in.Name})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, encode(conv.Doc)) {
		t.Fatal("conversion differs after an EncodeInstance/ParseInstance round trip")
	}

	// Different seed must differ (the pin would be vacuous otherwise).
	in2, err := GenerateInstance("epidemiology", GenParams{Tasks: 70, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	conv2, err := Convert([]*Instance{in2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, encode(conv2.Doc)) {
		t.Fatal("different seeds produced identical wfjson bytes")
	}
}

// TestGenerateRecipesEndToEnd runs every built-in recipe through the
// whole pipe: generate → convert → encode → decode → build → finite
// turnaround, at two sizes.
func TestGenerateRecipesEndToEnd(t *testing.T) {
	for _, r := range Recipes() {
		name := r[:strings.Index(r, ":")]
		for _, tasks := range []int{25, 120} {
			t.Run(fmt.Sprintf("%s-%d", name, tasks), func(t *testing.T) {
				in, err := GenerateInstance(name, GenParams{Tasks: tasks, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if len(in.Tasks) == 0 {
					t.Fatal("no tasks generated")
				}
				conv, err := Convert([]*Instance{in}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := wfjson.Encode(&buf, conv.Env, []*spec.Workflow{conv.Flow}); err != nil {
					t.Fatal(err)
				}
				env, flows, err := wfjson.Decode(&buf)
				if err != nil {
					t.Fatalf("converted document fails wfjson validation: %v", err)
				}
				model, err := spec.Build(flows[0], env)
				if err != nil {
					t.Fatal(err)
				}
				ta := model.Turnaround()
				if math.IsNaN(ta) || math.IsInf(ta, 0) || ta <= 0 {
					t.Fatalf("turnaround = %v", ta)
				}
				// Arrival scaling promise: bottleneck utilization equals
				// TargetRho under DefaultReplicas.
				req := model.ExpectedRequests()
				maxRho := 0.0
				for x := 0; x < env.K(); x++ {
					rho := flows[0].ArrivalRate * req[x] * env.Type(x).MeanService / DefaultReplicas
					if rho > maxRho {
						maxRho = rho
					}
				}
				if math.Abs(maxRho-0.30) > 1e-6 {
					t.Errorf("bottleneck rho = %v, want 0.30", maxRho)
				}
			})
		}
	}
}

func TestGenerateUnknownRecipe(t *testing.T) {
	_, err := GenerateInstance("nope", GenParams{})
	mustInvalid(t, err, "unknown recipe")
}

func TestScaleInstance(t *testing.T) {
	base, err := GenerateInstance("blast", GenParams{Tasks: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleInstance(base, GenParams{Tasks: 160, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scaled.Tasks); got < 120 || got > 200 {
		t.Fatalf("scaled task count = %d, want ≈ 160", got)
	}
	// Fixed single-task stages must stay single.
	perCat := map[string]int{}
	for _, task := range scaled.Tasks {
		perCat[task.Category]++
	}
	if perCat["splitFasta"] != 1 || perCat["catBlast"] != 1 || perCat["cat"] != 1 {
		t.Errorf("fixed stages scaled: %v", perCat)
	}
	// And the result must still convert and build.
	conv, err := Convert([]*Instance{scaled}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(conv.Flow, conv.Env); err != nil {
		t.Fatal(err)
	}
	// Determinism of scaling too.
	again, err := ScaleInstance(base, GenParams{Tasks: 160, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := EncodeInstance(&b1, scaled); err != nil {
		t.Fatal(err)
	}
	if err := EncodeInstance(&b2, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("ScaleInstance is not deterministic for a fixed seed")
	}
}

// TestConvertParallelBand: recipes with AND-split sibling stages
// (cycles, ml-pipeline) must produce at least one parallel level whose
// state embeds one subchart per category.
func TestConvertParallelBand(t *testing.T) {
	in, err := GenerateInstance("cycles", GenParams{Tasks: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Convert([]*Instance{in}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if conv.Stats.Parallel < 1 {
		t.Fatalf("cycles should collapse to ≥ 1 parallel level, stats = %+v", conv.Stats)
	}
	found := false
	for _, st := range conv.Flow.Chart.States {
		if len(st.Subcharts) >= 2 {
			found = true
		}
	}
	if !found {
		t.Error("no state embeds ≥ 2 orthogonal subcharts")
	}
}
