package wfcommons

import (
	"fmt"
	"math"
	"sort"

	"performa/internal/dist"
)

// GenParams tunes parametric instance generation (WfBench-style): a
// target task count, an optional fan-out boost for the wide stages, and
// the seed that makes the output reproducible.
type GenParams struct {
	// Tasks is the approximate total task count (fixed single-task
	// stages included). Values below a recipe's minimum clamp up.
	Tasks int
	// Fanout multiplies the width of every variable (fan-out) stage
	// after the task budget is split (default 1).
	Fanout float64
	// Seed drives the runtime sampler; the same (recipe, params) pair
	// always yields the same instance.
	Seed uint64
}

func (p *GenParams) setDefaults() {
	if p.Tasks <= 0 {
		p.Tasks = 50
	}
	if p.Fanout <= 0 {
		p.Fanout = 1
	}
}

// stage is one phase of a recipe's fan-out/fan-in skeleton. Stages
// marked par run in parallel with the preceding stage (same topological
// level, shared parents and children), forming an AND-split band.
type stage struct {
	category string
	fixed    int     // fixed width (>0) …
	weight   float64 // … or share of the variable task budget
	baseRT   float64 // base runtime in seconds
	sigma    float64 // lognormal spread of the runtimes
	par      bool    // parallel with the previous stage
}

// recipe is a parametric topology family modeled on the published
// WfCommons application shapes.
type recipe struct {
	name   string
	about  string
	stages []stage
}

// recipes are the built-in topology families: epidemiology, astronomy,
// bioinformatics, seismology, agro-ecosystem, and ML-pipeline shapes.
// Widths fan out and back in between consecutive stages (block
// bipartite wiring), like the real applications they are named after.
var recipes = []recipe{
	{
		name:  "epigenomics",
		about: "genome-sequencing pipeline: split → parallel filter/align chain → merge → index",
		stages: []stage{
			{category: "fastqSplit", fixed: 1, baseRT: 35, sigma: 0.2},
			{category: "filterContams", weight: 1, baseRT: 140, sigma: 0.35},
			{category: "sol2sanger", weight: 1, baseRT: 80, sigma: 0.3},
			{category: "fast2bfq", weight: 1, baseRT: 60, sigma: 0.3},
			{category: "map", weight: 1.5, baseRT: 420, sigma: 0.4},
			{category: "mapMerge", fixed: 1, baseRT: 150, sigma: 0.2},
			{category: "maqIndex", fixed: 1, baseRT: 90, sigma: 0.2},
			{category: "pileup", fixed: 1, baseRT: 120, sigma: 0.25},
		},
	},
	{
		name:  "montage",
		about: "astronomy mosaic: project → fit differences → background model → add/shrink",
		stages: []stage{
			{category: "mProject", weight: 1, baseRT: 95, sigma: 0.3},
			{category: "mDiffFit", weight: 2, baseRT: 18, sigma: 0.4},
			{category: "mConcatFit", fixed: 1, baseRT: 65, sigma: 0.2},
			{category: "mBgModel", fixed: 1, baseRT: 110, sigma: 0.2},
			{category: "mBackground", weight: 1, baseRT: 14, sigma: 0.35},
			{category: "mImgtbl", fixed: 1, baseRT: 40, sigma: 0.2},
			{category: "mAdd", fixed: 1, baseRT: 230, sigma: 0.25},
			{category: "mShrink", fixed: 1, baseRT: 55, sigma: 0.2},
			{category: "mJPEG", fixed: 1, baseRT: 22, sigma: 0.2},
		},
	},
	{
		name:  "seismology",
		about: "seismogram deconvolution: wide parallel sG1IterDecon → misfit sift",
		stages: []stage{
			{category: "sG1IterDecon", weight: 1, baseRT: 33, sigma: 0.45},
			{category: "wrapperSiftSTFByMisfit", fixed: 1, baseRT: 70, sigma: 0.2},
		},
	},
	{
		name:  "blast",
		about: "bioinformatics search: split fasta → parallel blastall → concatenate",
		stages: []stage{
			{category: "splitFasta", fixed: 1, baseRT: 28, sigma: 0.2},
			{category: "blastall", weight: 1, baseRT: 560, sigma: 0.35},
			{category: "catBlast", fixed: 1, baseRT: 45, sigma: 0.2},
			{category: "cat", fixed: 1, baseRT: 16, sigma: 0.2},
		},
	},
	{
		name:  "cycles",
		about: "agro-ecosystem sweep: parallel baseline runs → parallel cycles → parser → plots",
		stages: []stage{
			{category: "baselineCycles", weight: 1, baseRT: 210, sigma: 0.3},
			{category: "cycles", weight: 1, baseRT: 240, sigma: 0.3, par: true},
			{category: "fertilizerIncreaseOutputParser", fixed: 1, baseRT: 50, sigma: 0.2},
			{category: "cyclesPlots", fixed: 1, baseRT: 170, sigma: 0.25},
		},
	},
	{
		name:  "epidemiology",
		about: "epidemic simulation: setup → wide parallel simulate → aggregate → plot",
		stages: []stage{
			{category: "setup", fixed: 1, baseRT: 60, sigma: 0.2},
			{category: "simulate", weight: 3, baseRT: 300, sigma: 0.5},
			{category: "aggregate", fixed: 1, baseRT: 130, sigma: 0.2},
			{category: "plot", fixed: 1, baseRT: 75, sigma: 0.25},
		},
	},
	{
		name:  "ml-pipeline",
		about: "ML training pipeline: ingest → parallel preprocess/augment → train folds → evaluate → select → deploy",
		stages: []stage{
			{category: "ingest", fixed: 1, baseRT: 45, sigma: 0.2},
			{category: "preprocess", weight: 1.5, baseRT: 120, sigma: 0.3},
			{category: "augment", weight: 1, baseRT: 90, sigma: 0.3, par: true},
			{category: "trainFold", weight: 1, baseRT: 900, sigma: 0.4},
			{category: "evaluateFold", weight: 1, baseRT: 110, sigma: 0.3},
			{category: "selectBest", fixed: 1, baseRT: 30, sigma: 0.2},
			{category: "deploy", fixed: 1, baseRT: 55, sigma: 0.2},
		},
	},
}

// Recipes lists the built-in topology families as "name: description".
func Recipes() []string {
	out := make([]string, len(recipes))
	for i, r := range recipes {
		out[i] = fmt.Sprintf("%s: %s", r.name, r.about)
	}
	return out
}

// GenerateInstance builds a parametric WfCommons instance from a named
// recipe. Output is fully determined by (recipe, params).
func GenerateInstance(name string, p GenParams) (*Instance, error) {
	p.setDefaults()
	var rec *recipe
	for i := range recipes {
		if recipes[i].name == name {
			rec = &recipes[i]
			break
		}
	}
	if rec == nil {
		known := make([]string, len(recipes))
		for i, r := range recipes {
			known[i] = r.name
		}
		return nil, invalid("unknown recipe %q (known: %v)", name, known)
	}

	// Split the task budget: fixed stages take theirs, the rest spreads
	// over the variable stages by weight, boosted by Fanout.
	fixed, totalWeight := 0, 0.0
	for _, s := range rec.stages {
		if s.fixed > 0 {
			fixed += s.fixed
		} else {
			totalWeight += s.weight
		}
	}
	variable := p.Tasks - fixed
	if variable < 0 {
		variable = 0
	}
	widths := make([]int, len(rec.stages))
	for i, s := range rec.stages {
		if s.fixed > 0 {
			widths[i] = s.fixed
			continue
		}
		w := int(math.Round(float64(variable) * s.weight / totalWeight * p.Fanout))
		if w < 1 {
			w = 1
		}
		widths[i] = w
	}

	rng := dist.NewRNG(p.Seed*0x9e3779b97f4a7c15 + 1)
	total := 0
	for _, w := range widths {
		total += w
	}
	in := &Instance{
		Name:          fmt.Sprintf("%s-%d", rec.name, p.Tasks),
		SchemaVersion: "1.3",
		byID:          make(map[string]*Task, total),
	}
	nMachines := 2 + int(math.Min(2, float64(total)/64))
	for m := 0; m < nMachines; m++ {
		in.Machines = append(in.Machines, Machine{
			Name:  fmt.Sprintf("node%02d", m+1),
			Cores: 8,
		})
	}

	// Tasks band by band: a band is a stage plus any following stages
	// marked par (AND-split siblings). Every stage in a band wires to the
	// whole previous band by block bipartite mapping, so siblings share
	// the same topological level and the converter sees a parallel level.
	var prevBand []*Task
	serial := 0
	for si := 0; si < len(rec.stages); {
		bi := si + 1
		for bi < len(rec.stages) && rec.stages[bi].par {
			bi++
		}
		var band []*Task
		for k := si; k < bi; k++ {
			s := rec.stages[k]
			cur := make([]*Task, widths[k])
			for j := range cur {
				serial++
				rt := s.baseRT * math.Exp(s.sigma*rng.Norm()-s.sigma*s.sigma/2)
				t := &Task{
					ID:       fmt.Sprintf("%s_%05d", s.category, serial),
					Name:     fmt.Sprintf("%s_%05d", s.category, serial),
					Category: s.category,
					Runtime:  roundRT(rt),
					Machine:  in.Machines[serial%len(in.Machines)].Name,
				}
				cur[j] = t
				in.byID[t.ID] = t
				in.Tasks = append(in.Tasks, t)
			}
			connectStages(prevBand, cur)
			band = append(band, cur...)
		}
		prevBand = band
		si = bi
	}

	sort.Slice(in.Tasks, func(i, j int) bool { return in.Tasks[i].ID < in.Tasks[j].ID })
	for _, t := range in.Tasks {
		sort.Strings(t.Parents)
		sort.Strings(t.Children)
	}
	return in, nil
}

// connectStages wires two consecutive stage populations with the block
// bipartite pattern: parent i and child j connect when their index
// intervals [i/|A|, (i+1)/|A|) and [j/|B|, (j+1)/|B|) overlap.
func connectStages(parents, children []*Task) {
	na, nb := len(parents), len(children)
	if na == 0 || nb == 0 {
		return
	}
	for j, c := range children {
		lo := j * na / nb
		hi := ((j+1)*na - 1) / nb
		if hi >= na {
			hi = na - 1
		}
		for i := lo; i <= hi; i++ {
			p := parents[i]
			p.Children = append(p.Children, c.ID)
			c.Parents = append(c.Parents, p.ID)
		}
	}
}

// roundRT quantizes runtimes to milliseconds so encoded traces stay
// compact and re-parse to the exact same float.
func roundRT(rt float64) float64 {
	v := math.Round(rt*1000) / 1000
	if v <= 0 {
		v = 0.001
	}
	return v
}

// ScaleInstance produces a parametric variant of an imported topology:
// the category-level structure (which categories exist at which depth,
// and which feed which) is preserved, while per-category multiplicity
// scales to the target task count and fan-out boost, and runtimes are
// re-sampled around each category's empirical moments. Deterministic
// for a fixed (instance, params) pair.
func ScaleInstance(base *Instance, p GenParams) (*Instance, error) {
	p.setDefaults()
	if len(base.Tasks) == 0 {
		return nil, invalid("instance %q has no tasks to scale", base.Name)
	}
	levels := base.Levels()

	// Category cells: counts, runtime stats, and the category-level
	// dependency skeleton.
	type cell struct {
		key      [2]string // zero-padded level, category
		level    int
		category string
		count    int
		sumRT    float64
		sumRT2   float64
		parents  map[[2]string]bool
	}
	cells := map[[2]string]*cell{}
	keyOf := func(t *Task) [2]string {
		return [2]string{fmt.Sprintf("%06d", levels[t.ID]), t.Category}
	}
	for _, t := range base.Tasks {
		k := keyOf(t)
		c := cells[k]
		if c == nil {
			c = &cell{key: k, level: levels[t.ID], category: t.Category, parents: map[[2]string]bool{}}
			cells[k] = c
		}
		c.count++
		c.sumRT += t.Runtime
		c.sumRT2 += t.Runtime * t.Runtime
		for _, pid := range t.Parents {
			pt, _ := base.Task(pid)
			c.parents[keyOf(pt)] = true
		}
	}
	ordered := make([]*cell, 0, len(cells))
	for _, c := range cells {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].level != ordered[j].level {
			return ordered[i].level < ordered[j].level
		}
		return ordered[i].category < ordered[j].category
	})

	factor := float64(p.Tasks) / float64(len(base.Tasks))
	rng := dist.NewRNG(p.Seed*0x2545f4914f6cdd1d + 3)

	out := &Instance{
		Name:          fmt.Sprintf("%s-x%d", base.Name, p.Tasks),
		SchemaVersion: base.SchemaVersion,
		Machines:      append([]Machine(nil), base.Machines...),
		byID:          make(map[string]*Task),
	}
	if len(out.Machines) == 0 {
		out.Machines = []Machine{{Name: "node01", Cores: 8}, {Name: "node02", Cores: 8}}
	}

	newTasks := map[[2]string][]*Task{}
	serial := 0
	for _, c := range ordered {
		// Single-task cells are the pipeline's fixed merge/split points
		// and stay single; only fan-out cells scale.
		n := c.count
		if c.count > 1 {
			n = int(math.Round(float64(c.count) * factor * p.Fanout))
			if n < 1 {
				n = 1
			}
		}
		mean := c.sumRT / float64(c.count)
		m2 := c.sumRT2 / float64(c.count)
		sd := math.Sqrt(math.Max(m2-mean*mean, 0))
		tasks := make([]*Task, n)
		for j := range tasks {
			serial++
			rt := mean + sd*rng.Norm()
			if rt < mean/10 {
				rt = mean / 10
			}
			t := &Task{
				ID:       fmt.Sprintf("%s_%05d", c.category, serial),
				Name:     fmt.Sprintf("%s_%05d", c.category, serial),
				Category: c.category,
				Runtime:  roundRT(rt),
				Machine:  out.Machines[serial%len(out.Machines)].Name,
			}
			tasks[j] = t
			out.byID[t.ID] = t
			out.Tasks = append(out.Tasks, t)
		}
		newTasks[c.key] = tasks
	}

	// Re-wire the category-level skeleton with block bipartite edges.
	for _, c := range ordered {
		pkeys := make([][2]string, 0, len(c.parents))
		for k := range c.parents {
			pkeys = append(pkeys, k)
		}
		sort.Slice(pkeys, func(i, j int) bool {
			if pkeys[i][0] != pkeys[j][0] {
				return pkeys[i][0] < pkeys[j][0]
			}
			return pkeys[i][1] < pkeys[j][1]
		})
		for _, pk := range pkeys {
			connectStages(newTasks[pk], newTasks[c.key])
		}
	}

	sort.Slice(out.Tasks, func(i, j int) bool { return out.Tasks[i].ID < out.Tasks[j].ID })
	for _, t := range out.Tasks {
		sort.Strings(t.Parents)
		sort.Strings(t.Children)
	}
	return out, nil
}
