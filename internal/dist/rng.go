// Package dist provides the deterministic pseudo-random number generator
// and the service-time / failure-time distributions used by the
// discrete-event WFMS simulator and by workload generation.
//
// The analytic models of the paper characterize each distribution by its
// first two moments (Section 4.4 needs the mean b and the second moment
// b^(2) of the service time), so every Distribution here exposes Mean and
// SecondMoment alongside sampling.
package dist

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Distinct seeds give independent
// streams good enough for simulation studies, and runs are exactly
// reproducible across platforms.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed using splitmix64,
// so nearby seeds still produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Guard against the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("dist: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Norm returns a standard normal variate (Box-Muller, one value per call).
func (r *RNG) Norm() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Split returns a new generator deterministically derived from r's stream,
// useful for giving independent substreams to simulation components.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
