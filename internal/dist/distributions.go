package dist

import (
	"fmt"
	"math"
)

// Distribution is a nonnegative random variable with known first and
// second moments. The analytic performance model only consumes the two
// moments (the M/G/1 waiting-time formula of Section 4.4); the simulator
// consumes samples.
type Distribution interface {
	// Sample draws one value using the supplied generator.
	Sample(r *RNG) float64
	// Mean returns E[X].
	Mean() float64
	// SecondMoment returns E[X^2].
	SecondMoment() float64
	// String describes the distribution.
	String() string
}

// Variance returns Var(X) = E[X^2] - E[X]^2 for d.
func Variance(d Distribution) float64 {
	m := d.Mean()
	return d.SecondMoment() - m*m
}

// SCV returns the squared coefficient of variation Var(X)/E[X]^2, the
// standard shape measure for service-time distributions (1 for
// exponential, <1 hypo-exponential, >1 hyper-exponential).
func SCV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return Variance(d) / (m * m)
}

// Deterministic is a point mass at Value.
type Deterministic struct{ Value float64 }

// NewDeterministic returns a point-mass distribution at v. It panics if v
// is negative.
func NewDeterministic(v float64) Deterministic {
	if v < 0 {
		panic("dist: deterministic value must be nonnegative")
	}
	return Deterministic{Value: v}
}

func (d Deterministic) Sample(*RNG) float64   { return d.Value }
func (d Deterministic) Mean() float64         { return d.Value }
func (d Deterministic) SecondMoment() float64 { return d.Value * d.Value }
func (d Deterministic) String() string        { return fmt.Sprintf("Det(%g)", d.Value) }

// Exponential has rate Rate (mean 1/Rate).
type Exponential struct{ Rate float64 }

// NewExponential returns an exponential distribution with the given rate.
// It panics if rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic("dist: exponential rate must be positive")
	}
	return Exponential{Rate: rate}
}

// ExponentialFromMean returns an exponential distribution with the given
// mean. It panics if mean <= 0.
func ExponentialFromMean(mean float64) Exponential {
	if mean <= 0 {
		panic("dist: exponential mean must be positive")
	}
	return Exponential{Rate: 1 / mean}
}

func (d Exponential) Sample(r *RNG) float64 { return r.Exp(d.Rate) }
func (d Exponential) Mean() float64         { return 1 / d.Rate }
func (d Exponential) SecondMoment() float64 { return 2 / (d.Rate * d.Rate) }
func (d Exponential) String() string        { return fmt.Sprintf("Exp(rate=%g)", d.Rate) }

// Erlang is the sum of K independent exponential stages of rate Rate,
// i.e. mean K/Rate. Erlang stages are also the paper's suggested phase
// expansion for non-exponential failure/repair times (Section 5.1).
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns an Erlang-k distribution. It panics if k < 1 or
// rate <= 0.
func NewErlang(k int, rate float64) Erlang {
	if k < 1 {
		panic("dist: erlang needs at least one stage")
	}
	if rate <= 0 {
		panic("dist: erlang rate must be positive")
	}
	return Erlang{K: k, Rate: rate}
}

// ErlangFromMean returns an Erlang-k distribution with the given mean.
func ErlangFromMean(k int, mean float64) Erlang {
	if mean <= 0 {
		panic("dist: erlang mean must be positive")
	}
	return NewErlang(k, float64(k)/mean)
}

func (d Erlang) Sample(r *RNG) float64 {
	var s float64
	for i := 0; i < d.K; i++ {
		s += r.Exp(d.Rate)
	}
	return s
}

func (d Erlang) Mean() float64 { return float64(d.K) / d.Rate }

func (d Erlang) SecondMoment() float64 {
	k := float64(d.K)
	return k * (k + 1) / (d.Rate * d.Rate)
}

func (d Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,rate=%g)", d.K, d.Rate) }

// HyperExp is a two-phase hyperexponential: with probability P the sample
// is Exp(Rate1), otherwise Exp(Rate2). It models high-variance service
// times (SCV > 1), the regime where the M/G/1 second-moment term matters
// most.
type HyperExp struct {
	P     float64
	Rate1 float64
	Rate2 float64
}

// NewHyperExp returns a two-phase hyperexponential distribution. It
// panics on invalid parameters.
func NewHyperExp(p, rate1, rate2 float64) HyperExp {
	if p < 0 || p > 1 {
		panic("dist: hyperexponential branch probability must be in [0,1]")
	}
	if rate1 <= 0 || rate2 <= 0 {
		panic("dist: hyperexponential rates must be positive")
	}
	return HyperExp{P: p, Rate1: rate1, Rate2: rate2}
}

// HyperExpFromMeanSCV constructs a balanced-means two-phase
// hyperexponential with the requested mean and squared coefficient of
// variation scv (must be >= 1).
func HyperExpFromMeanSCV(mean, scv float64) HyperExp {
	if mean <= 0 {
		panic("dist: hyperexponential mean must be positive")
	}
	if scv < 1 {
		panic("dist: hyperexponential requires scv >= 1")
	}
	// Balanced means: p/rate1 = (1-p)/rate2 = mean/2.
	p := 0.5 * (1 + math.Sqrt((scv-1)/(scv+1)))
	return NewHyperExp(p, 2*p/mean, 2*(1-p)/mean)
}

func (d HyperExp) Sample(r *RNG) float64 {
	if r.Float64() < d.P {
		return r.Exp(d.Rate1)
	}
	return r.Exp(d.Rate2)
}

func (d HyperExp) Mean() float64 {
	return d.P/d.Rate1 + (1-d.P)/d.Rate2
}

func (d HyperExp) SecondMoment() float64 {
	return 2*d.P/(d.Rate1*d.Rate1) + 2*(1-d.P)/(d.Rate2*d.Rate2)
}

func (d HyperExp) String() string {
	return fmt.Sprintf("HyperExp(p=%g,rate1=%g,rate2=%g)", d.P, d.Rate1, d.Rate2)
}

// Uniform is uniform on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// NewUniform returns a uniform distribution on [lo, hi]. It panics if
// lo < 0 or hi < lo.
func NewUniform(lo, hi float64) Uniform {
	if lo < 0 || hi < lo {
		panic("dist: uniform needs 0 <= lo <= hi")
	}
	return Uniform{Lo: lo, Hi: hi}
}

func (d Uniform) Sample(r *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }
func (d Uniform) Mean() float64         { return (d.Lo + d.Hi) / 2 }

func (d Uniform) SecondMoment() float64 {
	// E[X^2] = (hi^3 - lo^3) / (3 (hi - lo)) = (lo^2 + lo*hi + hi^2)/3.
	return (d.Lo*d.Lo + d.Lo*d.Hi + d.Hi*d.Hi) / 3
}

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g]", d.Lo, d.Hi) }

// Lognormal has parameters Mu and Sigma of the underlying normal.
type Lognormal struct{ Mu, Sigma float64 }

// NewLognormal returns a lognormal distribution. It panics if sigma < 0.
func NewLognormal(mu, sigma float64) Lognormal {
	if sigma < 0 {
		panic("dist: lognormal sigma must be nonnegative")
	}
	return Lognormal{Mu: mu, Sigma: sigma}
}

// LognormalFromMeanSCV constructs a lognormal with the requested mean and
// squared coefficient of variation.
func LognormalFromMeanSCV(mean, scv float64) Lognormal {
	if mean <= 0 || scv < 0 {
		panic("dist: lognormal needs positive mean and nonnegative scv")
	}
	sigma2 := math.Log(1 + scv)
	mu := math.Log(mean) - sigma2/2
	return Lognormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

func (d Lognormal) Sample(r *RNG) float64 { return math.Exp(d.Mu + d.Sigma*r.Norm()) }
func (d Lognormal) Mean() float64         { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

func (d Lognormal) SecondMoment() float64 {
	return math.Exp(2*d.Mu + 2*d.Sigma*d.Sigma)
}

func (d Lognormal) String() string { return fmt.Sprintf("Lognormal(mu=%g,sigma=%g)", d.Mu, d.Sigma) }
