package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed gave different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams from different seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", x)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	var s float64
	const n = 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	if mean := s / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(9)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically")
	}
}

// sampleMoments estimates the first two moments of d with n samples.
func sampleMoments(d Distribution, n int, seed uint64) (m1, m2 float64) {
	r := NewRNG(seed)
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		m1 += x
		m2 += x * x
	}
	return m1 / float64(n), m2 / float64(n)
}

func checkMoments(t *testing.T, d Distribution, relTol float64) {
	t.Helper()
	m1, m2 := sampleMoments(d, 400000, 12345)
	if want := d.Mean(); math.Abs(m1-want)/want > relTol {
		t.Errorf("%v: sample mean %v vs analytic %v", d, m1, want)
	}
	if want := d.SecondMoment(); math.Abs(m2-want)/want > relTol {
		t.Errorf("%v: sample second moment %v vs analytic %v", d, m2, want)
	}
}

func TestExponentialMoments(t *testing.T) { checkMoments(t, NewExponential(2), 0.02) }
func TestErlangMoments(t *testing.T)      { checkMoments(t, NewErlang(3, 1.5), 0.02) }
func TestUniformMoments(t *testing.T)     { checkMoments(t, NewUniform(1, 5), 0.02) }
func TestLognormalMoments(t *testing.T)   { checkMoments(t, NewLognormal(0, 0.5), 0.03) }
func TestHyperExpMoments(t *testing.T)    { checkMoments(t, NewHyperExp(0.3, 4, 0.8), 0.03) }
func TestDeterministicMoments(t *testing.T) {
	d := NewDeterministic(3)
	if d.Sample(NewRNG(1)) != 3 || d.Mean() != 3 || d.SecondMoment() != 9 {
		t.Error("deterministic distribution wrong")
	}
}

func TestExponentialSCVIsOne(t *testing.T) {
	if got := SCV(NewExponential(3)); math.Abs(got-1) > 1e-12 {
		t.Errorf("SCV(exp) = %v, want 1", got)
	}
}

func TestErlangSCVBelowOne(t *testing.T) {
	if got := SCV(NewErlang(4, 1)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("SCV(erlang-4) = %v, want 0.25", got)
	}
}

func TestHyperExpFromMeanSCV(t *testing.T) {
	for _, tc := range []struct{ mean, scv float64 }{
		{1, 1}, {2, 4}, {0.5, 10},
	} {
		d := HyperExpFromMeanSCV(tc.mean, tc.scv)
		if math.Abs(d.Mean()-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("HyperExpFromMeanSCV(%v,%v).Mean() = %v", tc.mean, tc.scv, d.Mean())
		}
		if math.Abs(SCV(d)-tc.scv)/tc.scv > 1e-9 {
			t.Errorf("HyperExpFromMeanSCV(%v,%v) SCV = %v", tc.mean, tc.scv, SCV(d))
		}
	}
}

func TestLognormalFromMeanSCV(t *testing.T) {
	d := LognormalFromMeanSCV(3, 2)
	if math.Abs(d.Mean()-3)/3 > 1e-9 {
		t.Errorf("mean = %v, want 3", d.Mean())
	}
	if math.Abs(SCV(d)-2)/2 > 1e-9 {
		t.Errorf("scv = %v, want 2", SCV(d))
	}
}

func TestErlangFromMean(t *testing.T) {
	d := ErlangFromMean(5, 2.5)
	if math.Abs(d.Mean()-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", d.Mean())
	}
}

func TestExponentialFromMean(t *testing.T) {
	d := ExponentialFromMean(4)
	if math.Abs(d.Mean()-4) > 1e-12 {
		t.Errorf("mean = %v, want 4", d.Mean())
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewExponential(0) },
		func() { ExponentialFromMean(-1) },
		func() { NewErlang(0, 1) },
		func() { NewErlang(1, 0) },
		func() { ErlangFromMean(2, 0) },
		func() { NewHyperExp(-0.1, 1, 1) },
		func() { NewHyperExp(0.5, 0, 1) },
		func() { HyperExpFromMeanSCV(1, 0.5) },
		func() { NewUniform(-1, 2) },
		func() { NewUniform(3, 2) },
		func() { NewLognormal(0, -1) },
		func() { NewDeterministic(-2) },
		func() { NewRNG(1).Exp(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuickSamplesNonNegative(t *testing.T) {
	dists := []Distribution{
		NewExponential(1.5),
		NewErlang(2, 3),
		NewHyperExp(0.4, 2, 0.5),
		NewUniform(0, 4),
		NewLognormal(0.2, 0.7),
		NewDeterministic(1),
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for _, d := range dists {
			for i := 0; i < 32; i++ {
				x := d.Sample(r)
				if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(rawMean, rawSCV float64) bool {
		mean := 0.1 + math.Abs(math.Mod(rawMean, 10))
		scv := 1 + math.Abs(math.Mod(rawSCV, 8))
		d := HyperExpFromMeanSCV(mean, scv)
		return Variance(d) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
