package performa

import (
	"bytes"
	"math"
	"testing"

	"performa/internal/performability"
	"performa/internal/wfjson"
	"performa/internal/workload"
)

func epSystem(t *testing.T, xi float64) *System {
	t.Helper()
	sys, err := NewSystem(workload.PaperEnvironment(), workload.EPWorkflow(xi))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("nil environment accepted")
	}
	if _, err := NewSystem(workload.PaperEnvironment()); err == nil {
		t.Error("empty workflow list accepted")
	}
	w := workload.EPWorkflow(1)
	delete(w.Profiles, "NewOrder")
	if _, err := NewSystem(workload.PaperEnvironment(), w); err == nil {
		t.Error("invalid workflow accepted")
	}
}

func TestAssessBundlesAllModels(t *testing.T) {
	sys := epSystem(t, 1)
	as, err := sys.Assess(Configuration{Replicas: []int{2, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if as.Performance == nil || as.Availability == nil || as.Performability == nil {
		t.Fatal("missing model outputs")
	}
	if as.Performance.Saturated() {
		t.Error("light load reported saturated")
	}
	if as.Availability.DowntimeHoursPerYear <= 0 {
		t.Error("no downtime despite failure rates")
	}
	// The paper's asymmetric configuration bounds downtime below a
	// minute per year.
	if s := as.Availability.DowntimeSecondsPerYear(); s >= 60 {
		t.Errorf("downtime = %v s/yr, want < 60", s)
	}
	if as.Performability.MaxWaiting() < as.Performance.MaxWaiting() {
		t.Error("performability below failure-free waiting")
	}
}

func TestAssessWithSkipsPerformability(t *testing.T) {
	sys := epSystem(t, 1)
	opts := DefaultAssessOptions()
	opts.SkipPerformability = true
	as, err := sys.AssessWith(Configuration{Replicas: []int{1, 1, 1}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if as.Performability != nil {
		t.Error("performability computed despite skip")
	}
}

func TestAssessColocatedSkipsPerformability(t *testing.T) {
	sys := epSystem(t, 1)
	as, err := sys.Assess(Configuration{
		Replicas:  []int{2, 2, 2},
		Colocated: [][]int{{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if as.Performability != nil {
		t.Error("performability should be skipped for co-located configs")
	}
	if as.Performance == nil {
		t.Error("performance missing")
	}
}

func TestPlanMeetsGoals(t *testing.T) {
	sys := epSystem(t, 1)
	goals := Goals{MaxWaiting: 0.01, MaxUnavailability: 1e-5}
	rec, err := sys.Plan(goals, Constraints{}, plannerDefaults())
	if err != nil {
		t.Fatal(err)
	}
	as, err := sys.Assess(rec.Config)
	if err != nil {
		t.Fatal(err)
	}
	if as.Performability.MaxWaiting() > goals.MaxWaiting {
		t.Errorf("waiting %v above goal", as.Performability.MaxWaiting())
	}
	if 1-as.Availability.Availability > goals.MaxUnavailability {
		t.Errorf("unavailability above goal")
	}
	// Exhaustive baseline agrees on cost.
	ex, err := sys.PlanExhaustive(goals, Constraints{MaxReplicas: []int{6, 6, 6}}, plannerDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cost > ex.Cost+1 {
		t.Errorf("greedy cost %d vs exhaustive %d", rec.Cost, ex.Cost)
	}
}

func plannerDefaults() PlannerOptions {
	return PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	}
}

func TestSimulateValidatesAnalyticThroughput(t *testing.T) {
	// Keep the run small: EP at a low rate over a few thousand minutes.
	sys := epSystem(t, 0.2)
	res, err := sys.Simulate(SimParams{
		Replicas: []int{2, 2, 3},
		Seed:     5,
		Horizon:  4000,
		Warmup:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[0] == 0 {
		t.Fatal("no instances completed")
	}
	want := sys.Models()[0].Turnaround()
	if got := res.Turnaround[0].Mean; math.Abs(got-want)/want > 0.15 {
		t.Errorf("simulated turnaround %v vs analytic %v", got, want)
	}
}

func TestTurnaroundQuantileFacade(t *testing.T) {
	sys := epSystem(t, 1)
	median, err := sys.TurnaroundQuantile(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p95, err := sys.TurnaroundQuantile(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(median > 0 && p95 > median) {
		t.Errorf("median %v, p95 %v", median, p95)
	}
	if _, err := sys.TurnaroundQuantile(5, 0.5); err == nil {
		t.Error("bad index accepted")
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	sys := epSystem(t, 1.5)
	var buf bytes.Buffer
	if err := sys.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	env, flows, err := wfjson.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem(env, flows...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys.Models()[0].Turnaround()-sys2.Models()[0].Turnaround()) > 1e-9 {
		t.Error("round trip changed the model")
	}
}

func TestAccessors(t *testing.T) {
	sys := epSystem(t, 1)
	if sys.Env() == nil || sys.Analysis() == nil || len(sys.Models()) != 1 {
		t.Error("accessors broken")
	}
}
