// Package performa assesses and plans configurations of distributed
// workflow management systems (WFMSs), reproducing the models of
// Gillmann, Weissenfels, Weikum, and Kraiss: "Performance and
// Availability Assessment for the Configuration of Distributed Workflow
// Management Systems" (EDBT 2000).
//
// A WFMS is modeled as a set of abstract server types — one communication
// server (ORB), workflow engines, and application servers — each
// replicated Y_x times (the configuration). Workflow types are specified
// as statecharts, mapped onto absorbing continuous-time Markov chains,
// and analyzed for turnaround time and per-server-type load; an M/G/1
// model yields request waiting times, a system-state CTMC yields
// availability, and a Markov reward model combines the two into
// performability: the expected waiting time with failures and degraded
// modes taken into account. A greedy planner searches for the cheapest
// configuration meeting waiting-time and availability goals.
//
// Quick start:
//
//	env := workload.PaperEnvironment()
//	sys, _ := performa.NewSystem(env, workload.EPWorkflow(1.0))
//	as, _ := sys.Assess(performa.Configuration{Replicas: []int{2, 2, 3}})
//	fmt.Println(as.Availability.DowntimeHoursPerYear, as.Performability.MaxWaiting())
//
// The subpackages remain importable for fine-grained control:
// internal/spec (workflow model), internal/perf, internal/avail,
// internal/performability (the three analytic models), internal/config
// (the planner), internal/sim (the validating discrete-event simulator),
// and internal/engine (a runnable mini-WFMS producing audit trails for
// internal/calibrate).
package performa

import (
	"fmt"
	"io"

	"performa/internal/avail"
	"performa/internal/config"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/sim"
	"performa/internal/spec"
	"performa/internal/wfjson"
)

// Re-exported types, so typical use needs only this package plus
// internal/workload or hand-built specs.
type (
	// Configuration is a replication vector with optional co-location.
	Configuration = perf.Config
	// Goals are planning targets (max waiting time, max unavailability).
	Goals = config.Goals
	// Constraints bound the planner's search space.
	Constraints = config.Constraints
	// PlannerOptions tune the planner (including Workers, the size of
	// the assessment worker pool: 0 = NumCPU, 1 = sequential).
	PlannerOptions = config.Options
	// AnnealingOptions tune the simulated-annealing planner.
	AnnealingOptions = config.AnnealingOptions
	// Recommendation is the planner's output.
	Recommendation = config.Recommendation
	// SimParams configures a validation simulation.
	SimParams = sim.Params
	// SimResult reports simulation measurements.
	SimResult = sim.Result
)

// System is an assessable WFMS: a server environment plus a workflow mix
// with arrival rates. Building a System maps every workflow onto its
// stochastic model once; assessments of different configurations then
// reuse the models.
type System struct {
	env      *spec.Environment
	models   []*spec.Model
	analysis *perf.Analysis
}

// NewSystem validates the workflows against the environment and builds
// their stochastic models.
func NewSystem(env *spec.Environment, workflows ...*spec.Workflow) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("performa: nil environment")
	}
	if len(workflows) == 0 {
		return nil, fmt.Errorf("performa: at least one workflow required")
	}
	models := make([]*spec.Model, 0, len(workflows))
	for _, w := range workflows {
		m, err := spec.Build(w, env)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	analysis, err := perf.NewAnalysis(env, models)
	if err != nil {
		return nil, err
	}
	return &System{env: env, models: models, analysis: analysis}, nil
}

// Env returns the system's environment.
func (s *System) Env() *spec.Environment { return s.env }

// Models returns the workflow models in workflow order.
func (s *System) Models() []*spec.Model { return s.models }

// Analysis returns the aggregated performance analysis.
func (s *System) Analysis() *perf.Analysis { return s.analysis }

// AssessOptions tune an assessment.
type AssessOptions struct {
	// Performability selects the saturation policy and repair
	// discipline; the zero value is the literal Strict model. Most
	// callers want performability.ExcludeDown (used by DefaultAssess).
	Performability performability.Options
	// SkipPerformability disables the (comparatively expensive)
	// per-system-state evaluation.
	SkipPerformability bool
}

// DefaultAssessOptions returns the recommended assessment options: the
// ExcludeDown saturation policy, so the waiting-time metric describes the
// operational states while downtime is reported separately through the
// availability model.
func DefaultAssessOptions() AssessOptions {
	return AssessOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	}
}

// Assessment bundles the three model evaluations of one configuration.
type Assessment struct {
	// Performance is the failure-free performance report (Section 4).
	Performance *perf.Report
	// Availability is the availability report (Section 5).
	Availability *avail.Report
	// Performability is the combined model (Section 6); nil when
	// skipped.
	Performability *performability.Result
}

// Assess evaluates one configuration under the default options.
func (s *System) Assess(cfg Configuration) (*Assessment, error) {
	return s.AssessWith(cfg, DefaultAssessOptions())
}

// AssessWith evaluates one configuration.
func (s *System) AssessWith(cfg Configuration, opts AssessOptions) (*Assessment, error) {
	perfRep, err := s.analysis.Evaluate(cfg)
	if err != nil {
		return nil, err
	}
	params, err := avail.ParamsFromEnvironment(s.env, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	availRep, err := avail.EvaluateProductForm(params, opts.Performability.Discipline, false)
	if err != nil {
		return nil, err
	}
	out := &Assessment{Performance: perfRep, Availability: availRep}
	if !opts.SkipPerformability && len(cfg.Colocated) == 0 {
		pres, err := performability.Evaluate(s.analysis, cfg, opts.Performability)
		if err != nil {
			return nil, err
		}
		out.Performability = pres
	}
	return out, nil
}

// Plan searches for a near-minimum-cost configuration meeting the goals,
// using the paper's greedy heuristic.
func (s *System) Plan(goals Goals, cons Constraints, opts PlannerOptions) (*Recommendation, error) {
	return config.Greedy(s.analysis, goals, cons, opts)
}

// PlanExhaustive finds the true minimum-cost configuration by exhaustive
// search, the planner's optimality baseline. With opts.Workers ≠ 1 the
// candidates are assessed over a worker pool; the recommendation is
// identical to the sequential search's.
func (s *System) PlanExhaustive(goals Goals, cons Constraints, opts PlannerOptions) (*Recommendation, error) {
	return config.Exhaustive(s.analysis, goals, cons, opts)
}

// PlanBranchAndBound finds the true minimum-cost configuration by
// depth-first search with cost and feasibility pruning — the same
// optimum as PlanExhaustive with far fewer evaluations.
func (s *System) PlanBranchAndBound(goals Goals, cons Constraints, opts PlannerOptions) (*Recommendation, error) {
	return config.BranchAndBound(s.analysis, goals, cons, opts)
}

// PlanAnnealing searches the configuration space by simulated annealing,
// the paper's named alternative for rugged cost landscapes.
func (s *System) PlanAnnealing(goals Goals, cons Constraints, opts PlannerOptions, sa AnnealingOptions) (*Recommendation, error) {
	return config.SimulatedAnnealing(s.analysis, goals, cons, opts, sa)
}

// Simulate runs the discrete-event simulator over this system's workflow
// mix, filling in the environment and models.
func (s *System) Simulate(p SimParams) (*SimResult, error) {
	p.Env = s.env
	p.Models = s.models
	return sim.Run(p)
}

// TurnaroundQuantile returns the time t with P(turnaround of workflow i
// ≤ t) ≈ q, from the uniformized transient analysis of the workflow's
// CTMC — the percentile-level view the mean-value models don't give.
func (s *System) TurnaroundQuantile(i int, q float64) (float64, error) {
	if i < 0 || i >= len(s.models) {
		return 0, fmt.Errorf("performa: workflow index %d out of range [0,%d)", i, len(s.models))
	}
	return s.models[i].TurnaroundQuantile(q)
}

// ExportJSON writes the system's environment and workflows as a wfjson
// document consumable by cmd/wfmsconfig and cmd/wfmssim via -spec.
func (s *System) ExportJSON(w io.Writer) error {
	flows := make([]*spec.Workflow, len(s.models))
	for i, m := range s.models {
		flows[i] = m.Workflow
	}
	return wfjson.Encode(w, s.env, flows)
}
