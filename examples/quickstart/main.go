// Quickstart: assess a configuration of a distributed WFMS and let the
// planner recommend a cheaper or better one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"performa"
	"performa/internal/performability"
	"performa/internal/workload"
)

func main() {
	// The paper's environment: one ORB-style communication server type,
	// one workflow-engine type, one application-server type, failing
	// monthly / weekly / daily with 10-minute repairs (time unit:
	// minutes).
	env := workload.PaperEnvironment()

	// The electronic-purchase workflow of the paper's Figure 3, with
	// one new instance per minute.
	sys, err := performa.NewSystem(env, workload.EPWorkflow(1.0))
	if err != nil {
		log.Fatal(err)
	}

	// Assess the unreplicated system.
	as, err := sys.Assess(performa.Configuration{Replicas: []int{1, 1, 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unreplicated system (1,1,1):")
	fmt.Printf("  downtime per year:      %.1f hours\n", as.Availability.DowntimeHoursPerYear)
	fmt.Printf("  max waiting time:       %.4g min\n", as.Performance.MaxWaiting())
	fmt.Printf("  max throughput:         %.1f workflows/min\n", as.Performance.MaxWorkflowThroughput)

	// Ask the planner for the cheapest configuration with at most ~30
	// seconds of downtime per year and sub-second waiting.
	goals := performa.Goals{
		MaxWaiting:        0.01, // 0.6 s
		MaxUnavailability: 1e-6, // ≈ 32 s/year
	}
	rec, err := sys.Plan(goals, performa.Constraints{}, performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended configuration: %s (%d servers)\n", rec.Config, rec.Cost)

	final, err := sys.Assess(rec.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  downtime per year:      %.1f seconds\n", final.Availability.DowntimeSecondsPerYear())
	fmt.Printf("  performability waiting: %.4g min\n", final.Performability.MaxWaiting())
}
