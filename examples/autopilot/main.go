// Autopilot: the closed configuration loop of the paper's Section 7 —
// the advisor owns the workflow specifications and goals, the mini-WFMS
// executes the real (different!) workload, and each observation cycle
// recalibrates the models and re-decides whether the running
// configuration still meets the goals.
//
//	go run ./examples/autopilot
package main

import (
	"context"
	"fmt"
	"log"

	"performa/internal/advisor"
	"performa/internal/config"
	"performa/internal/engine"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/workload"
)

func main() {
	env := workload.PaperEnvironment()

	// The designer's estimate: a quiet shop, 0.2 orders/min.
	designed := workload.EPWorkflow(0.2)
	adv, err := advisor.New(env, []*spec.Workflow{designed}, advisor.Options{
		Goals: config.Goals{
			MaxWaiting:        5e-5, // 3 ms
			MaxUnavailability: 1e-5,
		},
		Planner: config.Options{
			Performability: performability.Options{Policy: performability.ExcludeDown},
		},
		AllowShrink: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Initial deployment for the estimated load.
	current := perf.Config{Replicas: []int{2, 2, 3}}
	decide(adv, &current, "initial deployment (designed for 0.2 orders/min)")

	// Reality check 1: a promotion took off — 30 orders/min hit the
	// running system. The engine executes the real workload and the
	// advisor observes the audit trail.
	observe(adv, env, 30, 300)
	decide(adv, &current, "after observing a surge of ~30 orders/min")

	// Reality check 2: the market cooled to 2 orders/min.
	observe(adv, env, 2, 120)
	decide(adv, &current, "after observing ~2 orders/min")
}

// observe executes `instances` real workflow instances at the given rate
// (per minute) on the mini-WFMS and feeds the trail to the advisor.
func observe(adv *advisor.Advisor, env *spec.Environment, rate float64, instances int) {
	truth := workload.EPWorkflow(rate)
	rt := engine.New(env, engine.Options{
		TimeScale:      0.001,
		Seed:           uint64(instances),
		AppWorkers:     map[string]int{workload.AppType: 512},
		Users:          512,
		ServerReplicas: map[string]int{workload.ORB: 512, workload.EngineType: 512, workload.AppType: 512},
	})
	if _, err := rt.RunInstances(context.Background(), truth, instances, 1/rate); err != nil {
		log.Fatal(err)
	}
	if err := adv.Observe(rt.Trail()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved %d instances (%d audit records); models recalibrated (#%d)\n",
		instances, rt.Trail().Len(), adv.Calibrations())
}

// decide asks the advisor about the current configuration and applies
// its recommendation.
func decide(adv *advisor.Advisor, current *perf.Config, label string) {
	d, err := adv.Recommend(*current)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  running %s — verdict: %s\n", current, d.Verdict)
	for _, r := range d.Reasons {
		fmt.Printf("    %s\n", r)
	}
	if d.Verdict != advisor.Keep {
		fmt.Printf("  reconfigure %s → %s (%d servers)\n", current, d.Target, d.TargetCost)
		*current = d.Target
	}
}
