// E-commerce capacity study: analyze the electronic-purchase workflow of
// the paper's Figure 3/4, sweep the arrival rate to find where each
// configuration saturates, plan configurations for a seasonal peak, and
// validate the analytic predictions against the discrete-event simulator.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"performa"
	"performa/internal/performability"
	"performa/internal/sim"
	"performa/internal/workload"
)

func main() {
	env := workload.PaperEnvironment()

	// --- 1. Workflow analysis (the Figure 4 CTMC) -------------------
	sys, err := performa.NewSystem(env, workload.EPWorkflow(1))
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Models()[0]
	fmt.Println("EP workflow analysis:")
	fmt.Printf("  mean turnaround:   %.2f min\n", m.Turnaround())
	visits := m.ExpectedVisits()
	fmt.Println("  expected visits per state:")
	for i, name := range m.StateNames {
		if i == m.Chain.Absorbing() {
			continue
		}
		fmt.Printf("    %-22s %.4f (residence %.1f min)\n", name, visits[i], m.Chain.H[i])
	}
	r := m.ExpectedRequests()
	fmt.Printf("  service requests per instance: orb %.2f, engine %.2f, appsrv %.2f\n\n", r[0], r[1], r[2])

	// --- 2. Arrival-rate sweep: when does each config saturate? -----
	fmt.Println("waiting time [min] by arrival rate and configuration:")
	fmt.Printf("  %-12s", "rate [1/min]")
	configs := []performa.Configuration{
		{Replicas: []int{1, 1, 1}},
		{Replicas: []int{2, 2, 2}},
		{Replicas: []int{4, 4, 4}},
	}
	for _, c := range configs {
		fmt.Printf("  %-10s", c.String())
	}
	fmt.Println()
	for _, rate := range []float64{5, 10, 20, 40, 60, 80} {
		s, err := performa.NewSystem(env, workload.EPWorkflow(rate))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12.0f", rate)
		for _, c := range configs {
			rep, err := s.Analysis().Evaluate(c)
			if err != nil {
				log.Fatal(err)
			}
			if rep.Saturated() {
				fmt.Printf("  %-10s", "saturated")
			} else {
				fmt.Printf("  %-10.5f", rep.MaxWaiting())
			}
		}
		fmt.Println()
	}

	// --- 3. Plan for the seasonal peak -------------------------------
	peak, err := performa.NewSystem(env, workload.EPWorkflow(60))
	if err != nil {
		log.Fatal(err)
	}
	goals := performa.Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	rec, err := peak.Plan(goals, performa.Constraints{}, performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeak-season plan (60 orders/min, wait ≤ 0.12 s, unavail ≤ 1e-5): %s, %d servers\n",
		rec.Config, rec.Cost)

	// --- 4. Validate against the simulator ---------------------------
	fmt.Println("\nvalidation against discrete-event simulation (3 orders/min, (2,2,2)):")
	val, err := performa.NewSystem(env, workload.EPWorkflow(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := val.Simulate(performa.SimParams{
		Replicas: []int{2, 2, 2},
		Seed:     1,
		Horizon:  20000,
		Warmup:   2000,
		Dispatch: sim.Random,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := val.Analysis().Evaluate(performa.Configuration{Replicas: []int{2, 2, 2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %-14s %-14s\n", "type", "w model [min]", "w simulated")
	for x := 0; x < env.K(); x++ {
		fmt.Printf("  %-10s %-14.6f %-14.6f\n", env.Type(x).Name, rep.Waiting[x], res.Waiting[x].Mean)
	}
	fmt.Printf("  turnaround: model %.2f vs simulated %.2f min (%d instances)\n",
		val.Models()[0].Turnaround(), res.Turnaround[0].Mean, res.Completed[0])
}
