// Dynamic reconfiguration: the workload of a running WFMS evolves — the
// order volume triples and a new workflow type is rolled out — and the
// configuration tool detects the goal violations and recommends the
// incremental reconfiguration (the paper's motivating scenario for
// reconfiguring a WFMS dynamically rather than only at design time).
//
//	go run ./examples/reconfig
package main

import (
	"fmt"
	"log"

	"performa"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/workload"
)

var goals = performa.Goals{
	MaxWaiting:        0.0005, // 30 ms
	MaxUnavailability: 1e-5,   // ≈ 5.3 min/year
}

func plannerOpts() performa.PlannerOptions {
	return performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	}
}

func main() {
	env := workload.PaperEnvironment()

	// --- Phase 1: initial deployment ---------------------------------
	phase1 := []*spec.Workflow{
		workload.EPWorkflow(20),
		workload.OrderWorkflow(10),
	}
	sys1, err := performa.NewSystem(env, phase1...)
	if err != nil {
		log.Fatal(err)
	}
	rec1, err := sys1.Plan(goals, performa.Constraints{}, plannerOpts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 (EP @ 20/min, Order @ 10/min): deploy %s (%d servers)\n", rec1.Config, rec1.Cost)

	// --- Phase 2: the order volume triples ---------------------------
	phase2 := []*spec.Workflow{
		workload.EPWorkflow(60),
		workload.OrderWorkflow(30),
	}
	sys2, err := performa.NewSystem(env, phase2...)
	if err != nil {
		log.Fatal(err)
	}
	report(sys2, rec1.Config, "phase 2 (volume ×3) on the phase-1 configuration")
	rec2, err := sys2.Plan(goals, performa.Constraints{MinReplicas: rec1.Config.Replicas}, plannerOpts())
	if err != nil {
		log.Fatal(err)
	}
	printDelta(env, rec1.Config, rec2.Config)

	// --- Phase 3: a new workflow type is rolled out -------------------
	phase3 := append(phase2, workload.LoanWorkflow(40))
	sys3, err := performa.NewSystem(env, phase3...)
	if err != nil {
		log.Fatal(err)
	}
	report(sys3, rec2.Config, "phase 3 (loan workflow added @ 40/min) on the phase-2 configuration")
	// Only grow, never shrink a running system: the current replicas
	// are the lower bound (the paper's constraint mechanism).
	rec3, err := sys3.Plan(goals, performa.Constraints{MinReplicas: rec2.Config.Replicas}, plannerOpts())
	if err != nil {
		log.Fatal(err)
	}
	printDelta(env, rec2.Config, rec3.Config)

	final, err := sys3.Assess(rec3.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal configuration %s: W^Y = %.5g min, downtime %.1f s/year, headroom ×%.1f\n",
		rec3.Config, final.Performability.MaxWaiting(),
		final.Availability.DowntimeSecondsPerYear(),
		final.Performance.ThroughputScale)
}

// report checks the goals of an existing configuration under a new load.
func report(sys *performa.System, cfg performa.Configuration, label string) {
	as, err := sys.Assess(cfg)
	if err != nil {
		log.Fatal(err)
	}
	waitOK := as.Performability.MaxWaiting() <= goals.MaxWaiting
	availOK := 1-as.Availability.Availability <= goals.MaxUnavailability
	fmt.Printf("\n%s:\n", label)
	fmt.Printf("  max waiting %.5g min (goal %.5g): %s\n",
		as.Performability.MaxWaiting(), goals.MaxWaiting, okString(waitOK))
	fmt.Printf("  unavailability %.3e (goal %.0e): %s\n",
		1-as.Availability.Availability, goals.MaxUnavailability, okString(availOK))
	if as.Performance.Saturated() {
		fmt.Println("  WARNING: at least one server type is saturated")
	}
}

func okString(ok bool) string {
	if ok {
		return "OK"
	}
	return "VIOLATED — reconfiguration needed"
}

func printDelta(env *spec.Environment, from, to performa.Configuration) {
	fmt.Printf("  reconfigure %s → %s:", from, to)
	changed := false
	for x := range to.Replicas {
		if d := to.Replicas[x] - from.Replicas[x]; d > 0 {
			fmt.Printf(" +%d %s", d, env.Type(x).Name)
			changed = true
		}
	}
	if !changed {
		fmt.Print(" no change needed")
	}
	fmt.Println()
}
