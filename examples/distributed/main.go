// Distributed architecture study: the full Figure-2 model of the paper —
// one ORB, two workflow-engine types (order/shipping, per the
// organizational structure), two application-server types, plus the
// directory and worklist services Section 2 names — planned in seven
// dimensions, with the workflow chart and its CTMC exported as Graphviz
// DOT and the whole system as a reusable JSON spec.
//
//	go run ./examples/distributed
//	dot -Tsvg /tmp/epx-chart.dot -o epx-chart.svg   # if graphviz is installed
//	go run ./cmd/wfmsconfig -spec /tmp/epx.json -max-unavail 1e-5
package main

import (
	"fmt"
	"log"
	"os"

	"performa"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/wfjson"
	"performa/internal/workload"
)

func main() {
	env := workload.ExtendedEnvironment()
	flow := workload.EPDistributed(8)
	sys, err := performa.NewSystem(env, flow)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. The workflow and its model --------------------------------
	m := sys.Models()[0]
	fmt.Printf("EPX workflow on %d server types: turnaround %.1f min\n", env.K(), m.Turnaround())
	r := m.ExpectedRequests()
	fmt.Println("per-instance service requests:")
	for x := 0; x < env.K(); x++ {
		fmt.Printf("  %-16s (%-13s) %6.2f\n", env.Type(x).Name, env.Type(x).Kind, r[x])
	}

	// --- 2. Plan the seven-dimensional configuration ------------------
	goals := performa.Goals{MaxWaiting: 0.002, MaxUnavailability: 1e-5}
	rec, err := sys.Plan(goals, performa.Constraints{}, performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan for w ≤ %.4g min, unavailability ≤ %.0e: %s (%d servers)\n",
		goals.MaxWaiting, goals.MaxUnavailability, rec.Config, rec.Cost)
	as, err := sys.Assess(rec.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  downtime %.1f s/year; turnaround inflated by queueing to %.4f min (bare %.4f)\n",
		as.Availability.DowntimeSecondsPerYear(),
		as.Performance.InflatedTurnaround[0], m.Turnaround())

	// --- 3. Export artifacts ------------------------------------------
	if err := os.WriteFile("/tmp/epx-chart.dot", []byte(flow.Chart.DOT()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("/tmp/epx-ctmc.dot", []byte(m.Chain.DOT()), 0o644); err != nil {
		log.Fatal(err)
	}
	specFile, err := os.Create("/tmp/epx.json")
	if err != nil {
		log.Fatal(err)
	}
	defer specFile.Close()
	if err := wfjson.Encode(specFile, env, []*spec.Workflow{flow}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexported:")
	fmt.Println("  /tmp/epx-chart.dot  (statechart, Graphviz)")
	fmt.Println("  /tmp/epx-ctmc.dot   (mapped CTMC, Graphviz)")
	fmt.Println("  /tmp/epx.json       (system spec for wfmsconfig/wfmssim -spec)")
}
