// Credit-bank study: a loan-approval workflow dominated by interactive
// activities runs on the mini-WFMS engine; the audit trail calibrates the
// model (the mapping → execution → calibration loop of the paper's
// Section 7.1), and the calibrated model drives a configuration
// recommendation with per-server-type goals.
//
//	go run ./examples/creditbank
package main

import (
	"context"
	"fmt"
	"log"

	"performa"
	"performa/internal/calibrate"
	"performa/internal/engine"
	"performa/internal/performability"
	"performa/internal/workload"
)

func main() {
	env := workload.PaperEnvironment()

	// --- 1. Designer's initial estimates -----------------------------
	// The designer guessed uniform branch probabilities; the real
	// behavior (encoded in workload.LoanWorkflow) differs.
	designed := workload.LoanWorkflow(2)
	for _, tr := range designed.Chart.Outgoing("Score_S") {
		tr.Prob = 1.0 / 3 // wrong guess: uniform over approve/reject/review
	}
	sys, err := performa.NewSystem(env, designed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed model: turnaround %.1f min, engine load %.2f req/instance\n",
		sys.Models()[0].Turnaround(), sys.Models()[0].ExpectedRequests()[1])

	// --- 2. Operate the system: run instances on the mini-WFMS -------
	truth := workload.LoanWorkflow(2) // the real behavior
	rt := engine.New(env, engine.Options{
		TimeScale:  0.001, // 1 ms of wall time per model minute
		Seed:       7,
		AppWorkers: map[string]int{workload.AppType: 256},
		Users:      256,
	})
	const instances = 500
	// Space arrivals so the measured durations reflect work, not
	// contention for the simulated users.
	done, err := rt.RunInstances(context.Background(), truth, instances, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d loan applications on the mini-WFMS (%d audit records)\n",
		done, rt.Trail().Len())

	// --- 3. Calibrate the designed model from the audit trail --------
	est, err := calibrate.FromTrail(rt.Trail())
	if err != nil {
		log.Fatal(err)
	}
	if err := est.ApplyToWorkflow(designed, env, calibrate.Options{Smoothing: 0.5}); err != nil {
		log.Fatal(err)
	}
	calibrated, err := performa.NewSystem(env, designed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("calibrated branch probabilities out of credit scoring:")
	for _, tr := range designed.Chart.Outgoing("Score_S") {
		fmt.Printf("  Score → %-12s %.3f\n", tr.To, tr.Prob)
	}
	fmt.Printf("calibrated model: turnaround %.1f min, engine load %.2f req/instance\n",
		calibrated.Models()[0].Turnaround(), calibrated.Models()[0].ExpectedRequests()[1])

	// --- 4. Plan with per-type goals ----------------------------------
	// The bank wants snappy engines (interactive worklists!) but can
	// tolerate slower application servers, and five-nines availability.
	goals := performa.Goals{
		MaxWaiting:        0.01,
		PerTypeMaxWaiting: []float64{0, 0.002, 0}, // tight goal for the engine type
		MaxUnavailability: 1e-5,
	}
	rec, err := calibrated.Plan(goals, performa.Constraints{}, performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended configuration: %s (%d servers)\n", rec.Config, rec.Cost)
	as, err := calibrated.Assess(rec.Config)
	if err != nil {
		log.Fatal(err)
	}
	for x := 0; x < env.K(); x++ {
		fmt.Printf("  %-10s × %d  W^Y = %.5g min\n",
			env.Type(x).Name, rec.Config.Replicas[x], as.Performability.Waiting[x])
	}
	fmt.Printf("  downtime: %.1f s/year\n", as.Availability.DowntimeSecondsPerYear())

	// --- 5. What would co-locating engine and app servers cost? ------
	colo := performa.Configuration{
		Replicas:  rec.Config.Replicas,
		Colocated: [][]int{{1, 2}},
	}
	if colo.Replicas[1] == colo.Replicas[2] {
		coloAs, err := calibrated.AssessWith(colo, performa.AssessOptions{SkipPerformability: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nco-locating engine+appsrv on %d shared computers: waiting %.5g min (vs %.5g separate), %d computers saved\n",
			colo.Replicas[1], coloAs.Performance.Waiting[1], as.Performance.Waiting[1],
			rec.Config.TotalServers()-colo.TotalServers())
	}
}
