module performa

go 1.22
