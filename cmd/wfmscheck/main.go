// Command wfmscheck is the differential validation harness: it generates
// randomized workflow systems and cross-checks the analytic stack
// (perf + avail + performability), the discrete-event simulator, and
// textbook closed-form oracles against each other. Disagreements beyond
// a CI-width-aware tolerance are shrunk to minimal reproducers and
// written as replayable corpus files.
//
// Usage:
//
//	wfmscheck -systems 200 -seed 1 -workers 8 -out corpus/
//	wfmscheck -systems 25 -mutate            # self-test: must detect the fault
//	wfmscheck -replay corpus/crossval-seed7.json
//	wfmscheck -corpus corpus                 # check the imported-workflow corpus
//	wfmscheck -net -systems 50               # net oracle vs true-concurrency sim vs collapse
//	wfmscheck -net -mutate -fault collapse-bias
//
// Exit status: 0 when every system agrees (or, with -mutate, when the
// injected fault was detected in at least one system), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"performa/internal/crossval"
	"performa/internal/wfcommons"
	"performa/internal/wfjson"
	"performa/internal/wfmserr"
)

func main() {
	var (
		systems      = flag.Int("systems", 50, "number of random systems to generate and check")
		seed         = flag.Uint64("seed", 1, "base generator seed; system i uses seed+i")
		workers      = flag.Int("workers", runtime.NumCPU(), "parallel checker goroutines")
		out          = flag.String("out", "", "directory for shrunk reproducer corpus files (empty: don't write)")
		replications = flag.Int("replications", 0, "performance-route simulation replications (default 5)")
		mutate       = flag.Bool("mutate", false, "mutation self-test: inject a fault into the analytic route and require the harness to detect it")
		faultName    = flag.String("fault", "service-moment", "fault injected by -mutate: arrival-rate, service-moment, or collapse-bias (the last needs -net)")
		replay       = flag.String("replay", "", "re-check a corpus file instead of generating systems")
		corpusDir    = flag.String("corpus", "", "check every wfjson system under this directory's systems/ instead of generating")
		solverDiff   = flag.Bool("solver-diff", false, "solver-differential mode: cross-check dense vs sparse steady-state solvers only (deterministic, no simulation)")
		netDiff      = flag.Bool("net", false, "net-differential mode: free-choice net oracle vs true-concurrency simulation vs collapsed analytic turnaround")
		noShrink     = flag.Bool("no-shrink", false, "skip shrinking failing systems")
		verbose      = flag.Bool("v", false, "log every system, not just failures")
	)
	flag.Parse()

	opt := crossval.Options{Replications: *replications}
	check := crossval.Check
	if *solverDiff && *netDiff {
		fatal(fmt.Errorf("-solver-diff and -net are mutually exclusive modes"))
	}
	if *solverDiff {
		if *mutate {
			fatal(fmt.Errorf("-solver-diff runs the analytic solvers against each other and cannot detect -mutate faults"))
		}
		check = crossval.CheckSolvers
	}
	if *netDiff {
		check = crossval.CheckNet
	}
	if *mutate {
		fault, err := crossval.FaultByName(*faultName)
		if err != nil {
			fatal(err)
		}
		if fault == crossval.FaultNone {
			fatal(fmt.Errorf("-mutate needs a real fault, got %q", *faultName))
		}
		if fault == crossval.FaultCollapseBias && !*netDiff {
			fatal(fmt.Errorf("collapse-bias perturbs the shared build path, so the legacy routes agree with themselves and are blind to it by construction — add -net"))
		}
		if *netDiff && fault != crossval.FaultCollapseBias {
			fatal(fmt.Errorf("-net compares turnaround oracles only and cannot detect %q; use -fault collapse-bias", *faultName))
		}
		opt.Fault = fault
	}

	code := func() (code int) {
		// Residual panics must cost a one-line diagnostic and a non-zero
		// exit, never a raw Go trace.
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(os.Stderr, "wfmscheck: internal error: %v\n", p)
				code = 2
			}
		}()
		if *replay != "" {
			return replayFile(*replay, opt, check)
		}
		if *corpusDir != "" {
			return runCorpus(*corpusDir, *workers, opt, check, *verbose)
		}
		return run(*systems, *seed, *workers, *out, opt, check, *noShrink, *mutate, *verbose)
	}()
	os.Exit(code)
}

type outcome struct {
	seed          uint64
	sys           *crossval.System
	disagreements []crossval.Disagreement
	err           error
}

// checkFn is the per-system check: the full multi-route Check, or the
// deterministic CheckSolvers in -solver-diff mode.
type checkFn func(*crossval.System, crossval.Options) ([]crossval.Disagreement, error)

func run(systems int, baseSeed uint64, workers int, out string, opt crossval.Options, check checkFn, noShrink, mutate, verbose bool) int {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan uint64)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				sys, err := crossval.Generate(s)
				if err != nil {
					results <- outcome{seed: s, err: err}
					continue
				}
				ds, err := check(sys, opt)
				results <- outcome{seed: s, sys: sys, disagreements: ds, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < systems; i++ {
			jobs <- baseSeed + uint64(i)
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	checked, failing, errored := 0, 0, 0
	var firstFailing *outcome
	for res := range results {
		checked++
		switch {
		case res.err != nil:
			errored++
			fmt.Fprintf(os.Stderr, "wfmscheck: seed %d: %v\n", res.seed, res.err)
		case len(res.disagreements) > 0:
			failing++
			r := res
			if firstFailing == nil {
				firstFailing = &r
			}
			fmt.Printf("seed %d: %d disagreement(s)\n", res.seed, len(res.disagreements))
			for _, d := range res.disagreements {
				fmt.Printf("  %s\n", d)
			}
			if out != "" {
				reportFailure(&r, out, opt, check, noShrink)
			}
		case verbose:
			fmt.Printf("seed %d: ok\n", res.seed)
		}
	}

	fmt.Printf("wfmscheck: %d systems checked, %d disagreeing, %d errored (fault: %s)\n",
		checked, failing, errored, opt.Fault)
	if errored > 0 {
		return 1
	}
	if mutate {
		if failing == 0 {
			fmt.Println("wfmscheck: MUTATION NOT DETECTED — the harness missed an injected fault")
			return 1
		}
		fmt.Printf("wfmscheck: mutation detected in %d/%d systems\n", failing, checked)
		return 0
	}
	if failing > 0 {
		return 1
	}
	return 0
}

// reportFailure shrinks a failing system and writes the reproducer.
func reportFailure(res *outcome, out string, opt crossval.Options, check checkFn, noShrink bool) {
	sys := res.sys
	if !noShrink {
		sys = crossval.Shrink(sys, func(c *crossval.System) bool {
			ds, err := check(c, opt)
			return err == nil && len(ds) > 0
		})
	}
	ds, err := check(sys, opt)
	if err != nil {
		ds = res.disagreements
		sys = res.sys
	}
	path, err := crossval.WriteCorpus(out, sys, opt.Fault, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfmscheck: writing corpus for seed %d: %v\n", res.seed, err)
		return
	}
	fmt.Printf("  reproducer: %s (%d workflow(s), %d server type(s))\n",
		path, len(sys.Flows), sys.Env.K())
}

// runCorpus checks every wfjson system under dir/systems/ through the
// differential harness: each file decodes to a system with the default
// corpus replica vector, a seed derived from its name, and the same
// multi-route check as generated systems. Any disagreement, decode
// failure, or silently empty directory exits non-zero.
func runCorpus(dir string, workers int, opt crossval.Options, check checkFn, verbose bool) int {
	paths, err := filepath.Glob(filepath.Join(dir, "systems", "*.wfjson"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "wfmscheck: no wfjson systems under %s\n", filepath.Join(dir, "systems"))
		return 1
	}
	if workers < 1 {
		workers = 1
	}

	type corpusOutcome struct {
		path          string
		disagreements []crossval.Disagreement
		err           error
	}
	jobs := make(chan string)
	results := make(chan corpusOutcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				sys, err := loadCorpusSystem(p)
				if err != nil {
					results <- corpusOutcome{path: p, err: err}
					continue
				}
				ds, err := check(sys, opt)
				results <- corpusOutcome{path: p, disagreements: ds, err: err}
			}
		}()
	}
	go func() {
		for _, p := range paths {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	checked, failing, errored := 0, 0, 0
	for res := range results {
		checked++
		switch {
		case res.err != nil:
			errored++
			fmt.Fprintf(os.Stderr, "wfmscheck: %s: %v\n", res.path, res.err)
		case len(res.disagreements) > 0:
			failing++
			fmt.Printf("%s: %d disagreement(s)\n", res.path, len(res.disagreements))
			for _, d := range res.disagreements {
				fmt.Printf("  %s\n", d)
			}
		case verbose:
			fmt.Printf("%s: ok\n", res.path)
		}
	}
	fmt.Printf("wfmscheck: %d corpus systems checked, %d disagreeing, %d errored\n",
		checked, failing, errored)
	if failing > 0 || errored > 0 {
		return 1
	}
	return 0
}

// loadCorpusSystem decodes one corpus wfjson file into a checkable
// system: the corpus default replica vector and a name-derived seed.
func loadCorpusSystem(path string) (*crossval.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	env, flows, err := wfjson.Decode(f)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(filepath.Base(path)))
	return &crossval.System{
		Seed:     h.Sum64(),
		Env:      env,
		Flows:    flows,
		Replicas: wfcommons.Replicas(env),
	}, nil
}

// replayFile re-checks a corpus reproducer under its recorded fault.
func replayFile(path string, opt crossval.Options, check checkFn) int {
	sys, cf, err := crossval.ReadCorpus(path)
	if err != nil {
		fatal(err)
	}
	fault, err := crossval.FaultByName(cf.Fault)
	if err != nil {
		fatal(err)
	}
	opt.Fault = fault
	ds, err := check(sys, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay %s (seed %d, fault %s): %d disagreement(s), %d recorded\n",
		path, cf.Seed, cf.Fault, len(ds), len(cf.Disagreements))
	for _, d := range ds {
		fmt.Printf("  %s\n", d)
	}
	if len(ds) > 0 {
		return 1
	}
	return 0
}

// fatal prints a one-line diagnostic, prefixed with the error's taxonomy
// code when typed, and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfmscheck:", wfmserr.Describe(err))
	os.Exit(1)
}
