// Command wfmsreplay streams a recorded audit trail into a running
// wfmsd instance through POST /v1/events, closing the paper's online
// calibration loop from the command line: the daemon scores the
// replayed behavior against the warm model's parameters and rebuilds
// the model when the drift threshold is crossed.
//
// The target system is addressed by its fingerprint (as printed by
// /v1/assess) or by its JSON specification, from which the fingerprint
// is derived locally; -register additionally warms the daemon's model
// before the replay starts, which a fresh daemon needs before it
// accepts events.
//
// Usage:
//
//	wfmsreplay -addr http://localhost:8080 -fingerprint 5ac1... -trail run.jsonl
//	wfmsreplay -addr http://localhost:8080 -spec sys.json -register -config 3,3,4 -trail - < run.jsonl
//	wfmsreplay -addr http://localhost:8080 -spec sys.json -trail run.jsonl -speedup 60
//
// With -speedup S the trail is paced at S trail time-units per
// wall-clock second; 0 replays as fast as the daemon accepts.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"performa/internal/audit"
	"performa/internal/replay"
	"performa/internal/server"
	"performa/internal/wfjson"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "wfmsd base URL")
		trailPath   = flag.String("trail", "", "audit trail in JSON lines (\"-\" for stdin)")
		fingerprint = flag.String("fingerprint", "", "target system fingerprint (as returned by /v1/assess)")
		specFile    = flag.String("spec", "", "JSON system specification to derive the fingerprint from (alternative to -fingerprint)")
		register    = flag.Bool("register", false, "warm the daemon's model via /v1/assess before replaying (requires -spec)")
		configSpec  = flag.String("config", "", "configuration for -register, e.g. 3,3,4 (default: one replica per type)")
		batch       = flag.Int("batch", 500, "records per POST /v1/events batch")
		speedup     = flag.Float64("speedup", 0, "trail time-units replayed per wall-clock second (0 = full speed)")
	)
	flag.Parse()
	if *trailPath == "" {
		fail(fmt.Errorf("no -trail given"))
	}

	recs, err := readTrail(*trailPath)
	if err != nil {
		fail(err)
	}

	fp := *fingerprint
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fail(err)
		}
		env, flows, err := wfjson.Decode(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		specFP, err := wfjson.Fingerprint(env, flows)
		if err != nil {
			fail(err)
		}
		if fp != "" && fp != specFP {
			fail(fmt.Errorf("-fingerprint %s does not match -spec fingerprint %s", fp, specFP))
		}
		fp = specFP
		if *register {
			doc, err := wfjson.ToDocument(env, flows)
			if err != nil {
				fail(err)
			}
			cfg, err := parseConfig(*configSpec, env.K())
			if err != nil {
				fail(err)
			}
			if err := warmModel(*addr, doc, cfg, fp); err != nil {
				fail(err)
			}
			fmt.Printf("registered system %s at config %v\n", fp, cfg)
		}
	}
	if fp == "" {
		fail(fmt.Errorf("no target system: give -fingerprint or -spec"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sum, err := replay.Replay(ctx, recs, replay.Options{
		BaseURL:     *addr,
		Fingerprint: fp,
		BatchSize:   *batch,
		SpeedUp:     *speedup,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if sum != nil {
		fmt.Printf("replayed %d records in %d batches to %s\n", sum.Records, sum.Batches, fp)
		fmt.Printf("  drift: %s (generation %d, %d invalidations, drifted=%v)\n",
			sum.Final.Drift.String(), sum.Generation, sum.Invalidations, sum.Drifted)
	}
	if err != nil {
		fail(err)
	}
}

func readTrail(path string) ([]audit.Record, error) {
	if path == "-" {
		return audit.ReadRecords(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return audit.ReadRecords(f)
}

// warmModel posts the system to /v1/assess so the daemon holds a warm
// model (the drift baseline) before events stream in. The goal is
// vacuous (unavailability ≤ 1): registration only needs the model
// built, not a meaningful verdict.
func warmModel(addr string, doc *wfjson.Document, cfg []int, fp string) error {
	body, err := json.Marshal(server.AssessRequest{
		System: *doc,
		Config: cfg,
		Goals:  server.GoalsJSON{MaxUnavailability: 0.999999},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registering system: %s: %s", resp.Status, raw)
	}
	var out server.AssessResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return err
	}
	if out.Fingerprint != fp {
		return fmt.Errorf("daemon fingerprinted the system as %s, expected %s", out.Fingerprint, fp)
	}
	return nil
}

func parseConfig(s string, k int) ([]int, error) {
	if s == "" {
		cfg := make([]int, k)
		for i := range cfg {
			cfg[i] = 1
		}
		return cfg, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return nil, fmt.Errorf("configuration %q has %d entries for %d server types", s, len(parts), k)
	}
	cfg := make([]int, k)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad replication degree %q", p)
		}
		cfg[i] = v
	}
	return cfg, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfmsreplay:", err)
	os.Exit(1)
}
