// Command wfmsd serves the configuration-advisory pipeline over
// HTTP/JSON: assessment, planning, and calibration of distributed-WFMS
// configurations as a long-running service with warm model caches — the
// paper's Section 7 tool consulted continuously instead of re-solving
// the models per invocation.
//
// Usage:
//
//	wfmsd -addr :8080
//	wfmsd -addr :8080 -workers 8 -cache-size 64 -request-timeout 30s
//
// Endpoints: POST /v1/assess, POST /v1/recommend, POST /v1/assess-batch,
// POST /v1/recommend-batch, POST /v1/jobs/recommend, GET|DELETE
// /v1/jobs/{id}, POST /v1/calibrate, POST /v1/events, GET /v1/drift,
// GET /v1/sensitivity, POST|GET /v1/deployments, GET /v1/advisories,
// GET /v1/stats, GET /metrics, GET /healthz. See internal/server for
// the request schemas and DESIGN.md §7 (serving), §10 (online
// calibration), §13 (batch/async serving and tenant quotas), and §14
// (sensitivity-guided reconfiguration) for the architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"performa/internal/server"
	"performa/internal/stream"
	"performa/internal/wfmserr"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "total planner-worker budget (0 = all CPUs)")
		cacheSize  = flag.Int("cache-size", 32, "warm system models kept resident (LRU entries)")
		reqTimeout = flag.Duration("request-timeout", 60*time.Second, "per-request deadline for assess/recommend/calibrate (0 = none)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		maxBody    = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		logJSON    = flag.Bool("log-json", false, "emit JSON logs instead of text")
		maxStates  = flag.Int("max-states", wfmserr.Default.MaxStates, "state-space size admitted per model (0 = unlimited)")
		maxDim     = flag.Int("max-matrix-dim", wfmserr.Default.MaxMatrixDim, "dense linear-system dimension admitted per solve (0 = unlimited)")
		maxSteps   = flag.Int("max-solver-steps", wfmserr.Default.MaxUniformizationSteps, "uniformization step budget per transient solve (0 = library default)")

		maxBatch     = flag.Int("max-batch-items", 0, "items admitted per batch request (0 = 256)")
		jobTTL       = flag.Duration("job-ttl", 0, "retention of finished async job results (0 = 15m)")
		maxJobs      = flag.Int("max-jobs", 0, "async jobs resident at once, queued+running+retained (0 = 1024)")
		tenantBudget = flag.Int("tenant-budget", 0, "per-tenant cap on concurrently held planner-worker tokens (0 = quotas off)")

		driftThreshold = flag.Float64("drift-threshold", 0, "relative parameter change at which streamed events invalidate a warm model (0 = per-dimension defaults)")
		driftMinSample = flag.Uint64("drift-min-samples", 0, "observations required before an estimate is drift-scored (0 = defaults)")
		streamHalfLife = flag.Float64("stream-half-life", 0, "exponential-decay half-life of the ingestion estimators in trail time-units (0 = keep all history)")
		maxStreams     = flag.Int("max-streams", 0, "per-system ingestion streams kept resident (0 = 64)")

		reconfigure = flag.Bool("reconfigure", false, "run the reconfiguration controller: drift crossings of registered deployments (POST /v1/deployments) trigger warm-started re-plans published on /v1/advisories")
	)
	flag.Parse()

	// The resource budget is consulted before any state space, matrix, or
	// series is allocated; requests exceeding it are refused with typed
	// 4xx errors instead of exhausting memory.
	wfmserr.Default = wfmserr.Budget{
		MaxStates:              *maxStates,
		MaxMatrixDim:           *maxDim,
		MaxUniformizationSteps: *maxSteps,
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	svc := server.New(server.Options{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		Drift: stream.Thresholds{
			Transition:    *driftThreshold,
			Residence:     *driftThreshold,
			Service:       *driftThreshold,
			Arrival:       *driftThreshold,
			MinDepartures: *driftMinSample,
			MinSamples:    *driftMinSample,
		},
		StreamHalfLife: *streamHalfLife,
		MaxStreams:     *maxStreams,
		MaxBatchItems:  *maxBatch,
		JobTTL:         *jobTTL,
		MaxJobs:        *maxJobs,
		TenantBudget:   *tenantBudget,
		Reconfigure:    *reconfigure,
	})
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	logger.Info("wfmsd listening", "addr", *addr)

	select {
	case <-ctx.Done():
		logger.Info("shutting down", "drain", drain.String())
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "wfmsd:", err)
		os.Exit(1)
	}

	// Drain: refuse new requests at the service layer, then close the
	// listener and wait for in-flight requests (http.Server.Shutdown
	// waits for active connections; expiring its context cancels the
	// request contexts, which unwinds any still-running searches).
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Warn("drain incomplete, canceling in-flight requests", "err", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "wfmsd: shutdown:", err)
		os.Exit(1)
	}
	logger.Info("wfmsd stopped")
}
