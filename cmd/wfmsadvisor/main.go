// Command wfmsadvisor is the closed-loop configuration advisor of the
// paper's Section 7: given a JSON system specification, the running
// configuration, goals, and (optionally) an audit trail in JSON-lines
// form, it recalibrates the models from the trail and recommends whether
// to keep, grow, or shrink the deployment.
//
// Usage:
//
//	wfmsconfig -workload ep -rate 2 -export-spec > system.json
//	wfmsadvisor -spec system.json -config 2,2,3 -max-wait 0.005 -max-unavail 1e-5
//	wfmsadvisor -spec system.json -config 2,2,3 -trail audit.jsonl -max-unavail 1e-5 -allow-shrink
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"performa/internal/advisor"
	"performa/internal/audit"
	"performa/internal/calibrate"
	"performa/internal/config"
	"performa/internal/ctmc"
	"performa/internal/perf"
	"performa/internal/performability"
	"performa/internal/wfjson"
	"performa/internal/wfmserr"
)

func main() {
	// Residual panics must cost a one-line diagnostic and a non-zero
	// exit, never a raw Go trace.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "wfmsadvisor: internal error: %v\n", p)
			os.Exit(2)
		}
	}()
	var (
		specFile    = flag.String("spec", "", "JSON system specification (required; see internal/wfjson)")
		trailFile   = flag.String("trail", "", "JSON-lines audit trail to recalibrate from (optional)")
		configSpec  = flag.String("config", "", "running configuration, e.g. 2,2,3 (required)")
		maxWait     = flag.Float64("max-wait", 0, "waiting-time goal (0 = none)")
		maxUnavail  = flag.Float64("max-unavail", 0, "unavailability goal (0 = none)")
		allowShrink = flag.Bool("allow-shrink", false, "permit recommending fewer replicas when goals hold with headroom")
		smoothing   = flag.Float64("smoothing", 0.5, "Laplace smoothing for recalibrated branch probabilities")
		minObs      = flag.Int("min-observations", 50, "minimum completed instances before a trail is trusted")
		workers     = flag.Int("workers", 0, "planner worker-pool size (0 = all CPUs, 1 = sequential)")
		solverName  = flag.String("solver", "auto", "steady-state solver strategy: auto, dense, gauss_seidel, jacobi, power, or bicgstab")
	)
	flag.Parse()
	if *specFile == "" || *configSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*specFile)
	if err != nil {
		fail(err)
	}
	env, flows, err := wfjson.Decode(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	solver, err := ctmc.ParseSolverStrategy(*solverName)
	if err != nil {
		fail(err)
	}
	adv, err := advisor.New(env, flows, advisor.Options{
		Goals: config.Goals{MaxWaiting: *maxWait, MaxUnavailability: *maxUnavail},
		Planner: config.Options{
			Performability: performability.Options{Policy: performability.ExcludeDown, Solver: solver},
			Workers:        *workers,
		},
		Calibration:          calibrate.Options{Smoothing: *smoothing},
		MinObservedInstances: *minObs,
		AllowShrink:          *allowShrink,
	})
	if err != nil {
		fail(err)
	}

	if *trailFile != "" {
		tf, err := os.Open(*trailFile)
		if err != nil {
			fail(err)
		}
		trail, err := audit.ReadJSONLines(tf)
		tf.Close()
		if err != nil {
			fail(err)
		}
		if err := adv.Observe(trail); err != nil {
			fail(fmt.Errorf("recalibration: %w", err))
		}
		fmt.Printf("recalibrated from %d audit records\n", trail.Len())
	}

	current, err := parseConfig(*configSpec, env.K())
	if err != nil {
		fail(err)
	}
	d, err := adv.Recommend(current)
	if err != nil {
		fail(err)
	}

	fmt.Printf("running %s — verdict: %s\n", current, d.Verdict)
	for _, r := range d.Reasons {
		fmt.Printf("  %s\n", r)
	}
	if d.Verdict != advisor.Keep {
		fmt.Printf("recommended: %s (%d servers)\n", d.Target, d.TargetCost)
		for x, dx := range d.Delta {
			if dx != 0 {
				fmt.Printf("  %+d %s\n", dx, env.Type(x).Name)
			}
		}
	}
	fmt.Printf("current metrics: max W^Y = %.5g, unavailability = %.3e\n",
		d.Current.Perf.MaxWaiting(), d.Current.Unavailability)
}

func parseConfig(s string, k int) (perf.Config, error) {
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return perf.Config{}, fmt.Errorf("configuration %q has %d entries for %d server types", s, len(parts), k)
	}
	replicas := make([]int, k)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return perf.Config{}, fmt.Errorf("bad replication degree %q", p)
		}
		replicas[i] = v
	}
	return perf.Config{Replicas: replicas}, nil
}

// fail prints a one-line diagnostic, prefixed with the error's taxonomy
// code when typed, and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfmsadvisor:", wfmserr.Describe(err))
	os.Exit(1)
}
