// Command wfmssim runs the discrete-event WFMS simulator against a
// configuration and prints measured versus analytically predicted
// metrics, standing in for the testbed measurements of the paper's
// Section 8.
//
// Usage:
//
//	wfmssim -workload ep -rate 3 -config 2,2,2 -horizon 20000
//	wfmssim -workload mix -rate 6 -config 2,2,3 -failures -accel 100
//	wfmssim -workload ep -rate 3 -config 2,2,2 -replications 8 -workers 4
//	wfmssim -workload ep -rate 3 -config 2,2,2 -trail run.jsonl
//
// A single simulation run is inherently sequential (one event clock),
// so -workers parallelizes across independent replications: with
// -replications N the simulator runs N times under seeds seed,
// seed+1, …, seed+N-1 on a pool of -workers goroutines and reports the
// across-replication means, which tightens the estimates the same way a
// longer horizon would while using every core.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"performa"
	"performa/internal/audit"
	"performa/internal/sim"
	"performa/internal/spec"
	"performa/internal/wfjson"
	"performa/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "ep", "built-in workflow mix: ep, order, loan, or mix")
		specFile     = flag.String("spec", "", "JSON system specification (overrides -workload/-rate/-accel; see internal/wfjson)")
		rate         = flag.Float64("rate", 3, "total workflow arrival rate per minute")
		configSpec   = flag.String("config", "2,2,2", "configuration to simulate (e.g. 2,2,3)")
		horizon      = flag.Float64("horizon", 20000, "simulated minutes")
		warmup       = flag.Float64("warmup", 0, "warm-up minutes to discard (default horizon/10)")
		seed         = flag.Uint64("seed", 42, "random seed")
		failures     = flag.Bool("failures", false, "enable server failures and repairs")
		accel        = flag.Float64("accel", 1, "failure-rate acceleration factor (for sampling downtime in short runs)")
		dispatch     = flag.String("dispatch", "random", "load partitioning: random, rr (round-robin), or shared (one queue per type)")
		replications = flag.Int("replications", 1, "independent replications under seeds seed, seed+1, ... (aggregated)")
		workers      = flag.Int("workers", 0, "parallel replication workers (0 = all CPUs, capped at -replications)")
		trailFile    = flag.String("trail", "", "write the run's audit trail as JSON lines (\"-\" for stdout; single replication only)")
	)
	flag.Parse()
	if *warmup <= 0 {
		*warmup = *horizon / 10
	}

	var env *spec.Environment
	var flows []*spec.Workflow
	var err error
	if *specFile != "" {
		f, ferr := os.Open(*specFile)
		if ferr != nil {
			fail(ferr)
		}
		env, flows, err = wfjson.Decode(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		env = workload.PaperEnvironment()
		if *accel != 1 {
			types := env.Types()
			for i := range types {
				types[i].FailureRate *= *accel
			}
			env = spec.MustEnvironment(types...)
		}
		flows, err = buildWorkflows(*workloadName, *rate)
		if err != nil {
			fail(err)
		}
	}
	sys, err := performa.NewSystem(env, flows...)
	if err != nil {
		fail(err)
	}
	cfg, err := parseConfig(*configSpec, env.K())
	if err != nil {
		fail(err)
	}

	params := performa.SimParams{
		Replicas:       cfg.Replicas,
		Seed:           *seed,
		Horizon:        *horizon,
		Warmup:         *warmup,
		EnableFailures: *failures,
	}
	switch strings.ToLower(*dispatch) {
	case "random":
		params.Dispatch = sim.Random
	case "rr", "round-robin":
		params.Dispatch = sim.RoundRobin
	case "shared", "shared-queue":
		params.Dispatch = sim.SharedQueue
	default:
		fail(fmt.Errorf("unknown dispatch policy %q (want random, rr, or shared)", *dispatch))
	}
	if *replications < 1 {
		fail(fmt.Errorf("-replications must be positive, got %d", *replications))
	}
	var trail *audit.Trail
	if *trailFile != "" {
		if *replications > 1 {
			fail(fmt.Errorf("-trail records a single run; it cannot be combined with -replications %d", *replications))
		}
		trail = audit.NewTrail()
		params.Trail = trail
	}
	res, err := runReplications(sys, params, *replications, *workers)
	if err != nil {
		fail(err)
	}
	if trail != nil {
		if err := writeTrail(*trailFile, trail); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d audit records to %s\n", trail.Len(), *trailFile)
	}
	rep, err := sys.Analysis().Evaluate(cfg)
	if err != nil {
		fail(err)
	}

	if *replications > 1 {
		fmt.Printf("simulated %s for %.0f min × %d replications (warm-up %.0f, %d events, seeds %d..%d)\n",
			cfg, *horizon, *replications, *warmup, res.Events, *seed, *seed+uint64(*replications)-1)
	} else {
		fmt.Printf("simulated %s for %.0f min (warm-up %.0f, %d events, seed %d)\n",
			cfg, *horizon, *warmup, res.Events, *seed)
	}
	fmt.Printf("  %-12s %-12s %-12s %-14s %-14s %-12s %-10s\n",
		"server type", "util (sim)", "util (model)", "wait (sim)", "wait (model)", "wait p95", "requests")
	for x := 0; x < env.K(); x++ {
		fmt.Printf("  %-12s %-12.4f %-12.4f %-14.5g %-14.5g %-12.5g %-10d\n",
			env.Type(x).Name,
			res.Utilization[x], rep.Utilization[x],
			res.Waiting[x].Mean, rep.Waiting[x],
			res.WaitingP95[x],
			res.RequestsServed[x])
	}
	for i, m := range sys.Models() {
		fmt.Printf("  workflow %-8s turnaround (sim) %.4f vs (model) %.4f min; %d completed\n",
			m.Workflow.Name, res.Turnaround[i].Mean, m.Turnaround(), res.Completed[i])
	}
	if *failures {
		fmt.Printf("  observed unavailability: %.6g\n", res.Unavailability)
	}
}

// runReplications executes n independent simulation runs under
// consecutive seeds on a bounded worker pool and merges the results:
// across-replication means for the rate-like metrics, sums for the
// counters. With n = 1 it is exactly one sys.Simulate call.
func runReplications(sys *performa.System, params performa.SimParams, n, workers int) (*performa.SimResult, error) {
	if n == 1 {
		return sys.Simulate(params)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	results := make([]*performa.SimResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := params
				p.Seed = params.Seed + uint64(i)
				results[i], errs[i] = sys.Simulate(p)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("replication %d (seed %d): %w", i, params.Seed+uint64(i), err)
		}
	}
	return mergeResults(results), nil
}

// mergeResults folds replication results into one report: means of the
// observed rates and waiting times, sums of the event and completion
// counters.
func mergeResults(results []*performa.SimResult) *performa.SimResult {
	n := float64(len(results))
	out := *results[0]
	out.Waiting = append([]sim.Moments(nil), results[0].Waiting...)
	out.WaitingP95 = append([]float64(nil), results[0].WaitingP95...)
	out.Utilization = append([]float64(nil), results[0].Utilization...)
	out.Turnaround = append([]sim.Moments(nil), results[0].Turnaround...)
	out.Completed = append([]uint64(nil), results[0].Completed...)
	out.RequestsServed = append([]uint64(nil), results[0].RequestsServed...)
	for _, r := range results[1:] {
		for x := range out.Waiting {
			out.Waiting[x].Mean += r.Waiting[x].Mean
			out.WaitingP95[x] += r.WaitingP95[x]
			out.Utilization[x] += r.Utilization[x]
			out.RequestsServed[x] += r.RequestsServed[x]
		}
		for i := range out.Turnaround {
			out.Turnaround[i].Mean += r.Turnaround[i].Mean
			out.Completed[i] += r.Completed[i]
		}
		out.Unavailability += r.Unavailability
		out.Events += r.Events
	}
	for x := range out.Waiting {
		out.Waiting[x].Mean /= n
		out.WaitingP95[x] /= n
		out.Utilization[x] /= n
	}
	for i := range out.Turnaround {
		out.Turnaround[i].Mean /= n
	}
	out.Unavailability /= n
	return &out
}

func buildWorkflows(name string, rate float64) ([]*spec.Workflow, error) {
	switch strings.ToLower(name) {
	case "ep":
		return []*spec.Workflow{workload.EPWorkflow(rate)}, nil
	case "order":
		return []*spec.Workflow{workload.OrderWorkflow(rate)}, nil
	case "loan":
		return []*spec.Workflow{workload.LoanWorkflow(rate)}, nil
	case "mix":
		return []*spec.Workflow{
			workload.EPWorkflow(rate * 0.5),
			workload.OrderWorkflow(rate * 0.3),
			workload.LoanWorkflow(rate * 0.2),
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func parseConfig(s string, k int) (performa.Configuration, error) {
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return performa.Configuration{}, fmt.Errorf("configuration %q has %d entries for %d server types", s, len(parts), k)
	}
	replicas := make([]int, k)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return performa.Configuration{}, fmt.Errorf("bad replication degree %q", p)
		}
		replicas[i] = v
	}
	return performa.Configuration{Replicas: replicas}, nil
}

// writeTrail dumps the recorded audit trail as JSON lines, the format
// wfmsreplay and POST /v1/events consume.
func writeTrail(path string, trail *audit.Trail) error {
	if path == "-" {
		return trail.WriteJSONLines(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trail.WriteJSONLines(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfmssim:", err)
	os.Exit(1)
}
