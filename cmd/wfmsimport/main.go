// Command wfmsimport converts WfCommons-format workflow traces into
// wfjson system documents, generates parametric topology variants, and
// maintains the checked-in corpus.
//
// Usage:
//
//	wfmsimport -in trace.json -out system.wfjson
//	wfmsimport -in run1.json -in run2.json -out system.wfjson   # branch freqs from multiplicity
//	wfmsimport -gen epigenomics -tasks 200 -seed 7 -out system.wfjson
//	wfmsimport -gen montage -tasks 120 -seed 3 -trace-out trace.json
//	wfmsimport -scale trace.json -tasks 400 -seed 5 -out system.wfjson
//	wfmsimport -rebuild corpus            # regenerate the corpus from manifest.json
//	wfmsimport -rebuild corpus -check     # diff only; non-zero exit on drift
//	wfmsimport -list-recipes
//
// Exit status: 0 on success, 1 on conversion or check failure, 2 on
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"performa/internal/wfcommons"
	"performa/internal/wfmserr"
)

// multiFlag collects repeated -in flags.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var ins multiFlag
	flag.Var(&ins, "in", "WfCommons trace file to convert (repeatable: several runs of one workflow type)")
	var (
		out         = flag.String("out", "", "wfjson output path (default stdout)")
		traceOut    = flag.String("trace-out", "", "write the generated/scaled WfCommons trace here instead of converting")
		gen         = flag.String("gen", "", "generate a parametric instance from this recipe (see -list-recipes)")
		scale       = flag.String("scale", "", "generate a parametric variant of this trace file")
		tasks       = flag.Int("tasks", 0, "target task count for -gen/-scale")
		fanout      = flag.Float64("fanout", 0, "fan-out boost for -gen/-scale (default 1)")
		seed        = flag.Uint64("seed", 1, "generator seed for -gen/-scale")
		name        = flag.String("name", "", "workflow name override")
		timeUnit    = flag.Float64("time-unit", 0, "trace seconds per model time unit (default 60)")
		rho         = flag.Float64("rho", 0, "target bottleneck utilization per replica (default 0.30)")
		rebuild     = flag.String("rebuild", "", "regenerate the corpus in this directory from its manifest.json")
		check       = flag.Bool("check", false, "with -rebuild: only diff against the checked-in files, write nothing")
		listRecipes = flag.Bool("list-recipes", false, "list the built-in topology recipes")
		verbose     = flag.Bool("v", false, "log collapse statistics")
	)
	flag.Parse()

	switch {
	case *listRecipes:
		for _, r := range wfcommons.Recipes() {
			fmt.Println(r)
		}
		os.Exit(0)
	case *rebuild != "":
		os.Exit(runRebuild(*rebuild, *check))
	}

	modes := 0
	if len(ins) > 0 {
		modes++
	}
	if *gen != "" {
		modes++
	}
	if *scale != "" {
		modes++
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "wfmsimport: exactly one of -in, -gen, or -scale is required (or -rebuild/-list-recipes)")
		flag.Usage()
		os.Exit(2)
	}

	var instances []*wfcommons.Instance
	params := wfcommons.GenParams{Tasks: *tasks, Fanout: *fanout, Seed: *seed}
	switch {
	case *gen != "":
		in, err := wfcommons.GenerateInstance(*gen, params)
		if err != nil {
			fatal(err)
		}
		instances = append(instances, in)
	case *scale != "":
		base, err := parseFile(*scale)
		if err != nil {
			fatal(err)
		}
		in, err := wfcommons.ScaleInstance(base, params)
		if err != nil {
			fatal(err)
		}
		instances = append(instances, in)
	default:
		for _, path := range ins {
			in, err := parseFile(path)
			if err != nil {
				fatal(err)
			}
			instances = append(instances, in)
		}
	}

	if *traceOut != "" {
		if len(instances) != 1 {
			fatal(fmt.Errorf("-trace-out writes exactly one instance, have %d", len(instances)))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := wfcommons.EncodeInstance(f, instances[0]); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wfmsimport: wrote %s (%d tasks)\n", *traceOut, len(instances[0].Tasks))
		return
	}

	conv, err := wfcommons.Convert(instances, wfcommons.Options{
		Name:      *name,
		TimeUnit:  *timeUnit,
		TargetRho: *rho,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		s := conv.Stats
		fmt.Fprintf(os.Stderr, "wfmsimport: %d instance(s), %d tasks → %d levels (%d parallel, %d optional), %d activities, %d server types\n",
			s.Instances, s.Tasks, s.Levels, s.Parallel, s.Optional, s.Activities, s.ServerTypes)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(conv.Doc); err != nil {
		fatal(err)
	}
}

func parseFile(path string) (*wfcommons.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in, err := wfcommons.ParseInstance(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return in, nil
}

func runRebuild(dir string, checkOnly bool) int {
	if checkOnly {
		mismatches, err := wfcommons.CheckCorpus(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfmsimport:", wfmserr.Describe(err))
			return 1
		}
		if len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintf(os.Stderr, "wfmsimport: corpus drift: %s (%s): %s\n", m.Name, m.Out, m.Err)
			}
			fmt.Fprintf(os.Stderr, "wfmsimport: %d corpus file(s) out of date — run `wfmsimport -rebuild %s`\n", len(mismatches), dir)
			return 1
		}
		fmt.Println("wfmsimport: corpus is exactly reproducible from its manifest")
		return 0
	}
	paths, err := wfcommons.RebuildCorpus(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsimport:", wfmserr.Describe(err))
		return 1
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Printf("wfmsimport: rebuilt %d corpus system(s)\n", len(paths))
	return 0
}

// fatal prints a one-line diagnostic with the error's taxonomy code and
// exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfmsimport:", wfmserr.Describe(err))
	os.Exit(1)
}
