// Command wfmsbench regenerates the experiment tables of EXPERIMENTS.md:
// every table and figure-equivalent of the paper's evaluation plus the
// ablation series.
//
// Usage:
//
//	wfmsbench -exp all
//	wfmsbench -exp e1,e6
//	wfmsbench -exp e7 -seed 7 -horizon 40000
//	wfmsbench -exp e6,e11 -workers 8 -cpuprofile planners.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"performa/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds main's body so the pprof defers flush before the process
// exits (os.Exit skips deferred calls).
func run() int {
	var (
		exp            = flag.String("exp", "all", "comma-separated experiment ids: e1..e8, a1..a4, or all")
		seed           = flag.Uint64("seed", 42, "seed for simulation-backed experiments")
		horizon        = flag.Float64("horizon", 20000, "simulation horizon in model minutes (e7)")
		workers        = flag.Int("workers", 0, "planner worker-pool size (0 = all CPUs, 1 = sequential)")
		solverJSON     = flag.String("solver-json", "", "run only the E16 solver-scaling bench and write its rows as JSON to this file")
		solverReduced  = flag.Bool("solver-reduced", false, "with -solver-json: the reduced sweep (CI smoke sizes)")
		corpusJSON     = flag.String("corpus-json", "", "run only the E17 corpus solver sweep and write its rows as JSON to this file")
		corpusDir      = flag.String("corpus-dir", "corpus", "imported-workflow corpus directory for E17/E18/E19")
		servingJSON    = flag.String("serving-json", "", "run only the E18 serving bench and write its rows as JSON to this file")
		servingReduced = flag.Bool("serving-reduced", false, "with -serving-json: the reduced sweep (CI smoke sizes)")
		reconfigJSON   = flag.String("reconfig-json", "", "run only the E19 reconfiguration-loop bench and write its rows as JSON to this file")
		reconfigRed    = flag.Bool("reconfig-reduced", false, "with -reconfig-json: the reduced sweep (CI smoke sizes)")
		netdiffJSON    = flag.String("netdiff-json", "", "run only the E20 collapse-bias bench and write its rows as JSON to this file")
		netdiffReduced = flag.Bool("netdiff-reduced", false, "with -netdiff-json: the reduced grid (CI smoke sizes)")
		cpuprofile     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile     = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	experiments.PlannerWorkers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfmsbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wfmsbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfmsbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is representative
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wfmsbench:", err)
			}
		}()
	}

	if *solverJSON != "" {
		return runSolverBench(*solverJSON, *solverReduced)
	}
	if *corpusJSON != "" {
		return runCorpusBench(*corpusJSON, *corpusDir)
	}
	if *servingJSON != "" {
		return runServingBench(*servingJSON, *corpusDir, *servingReduced)
	}
	if *reconfigJSON != "" {
		return runReconfigBench(*reconfigJSON, *corpusDir, *reconfigRed)
	}
	if *netdiffJSON != "" {
		return runNetDiffBench(*netdiffJSON, *corpusDir, *netdiffReduced)
	}

	runners := map[string]func() (*experiments.Table, error){
		"e1": experiments.E1Availability,
		"e2": experiments.E2EPWorkflow,
		"e3": experiments.E3Throughput,
		"e4": experiments.E4WaitingCurve,
		"e5": experiments.E5Performability,
		"e6": experiments.E6Greedy,
		"e7": func() (*experiments.Table, error) {
			return experiments.E7Validation(experiments.E7Options{Seed: *seed, Horizon: *horizon})
		},
		"e8": func() (*experiments.Table, error) {
			return experiments.E8Calibration(experiments.E8Options{Seed: *seed})
		},
		"e9":  experiments.E9Distribution,
		"e10": experiments.E10Scalability,
		"e11": experiments.E11Planners,
		"e12": experiments.E12Extended,
		"e13": func() (*experiments.Table, error) { return experiments.E13Discovery(*seed) },
		"e16": func() (*experiments.Table, error) {
			_, t, err := experiments.SolverBench(false)
			return t, err
		},
		"e17": func() (*experiments.Table, error) {
			_, t, err := experiments.CorpusBench(*corpusDir, 0)
			return t, err
		},
		"e18": func() (*experiments.Table, error) {
			_, t, err := experiments.ServingBench(*corpusDir, false)
			return t, err
		},
		"e19": func() (*experiments.Table, error) {
			_, t, err := experiments.ReconfigBench(*corpusDir, false)
			return t, err
		},
		"e20": func() (*experiments.Table, error) {
			_, t, err := experiments.NetDiffBench(*corpusDir, false)
			return t, err
		},
		"a1": experiments.AblationSeries,
		"a2": experiments.AblationAvailabilitySolvers,
		"a3": experiments.AblationRepairDiscipline,
		"a4": func() (*experiments.Table, error) { return experiments.AblationDispatch(*seed) },
		"a5": experiments.AblationHeterogeneous,
		"a6": experiments.AblationTransient,
		"a7": func() (*experiments.Table, error) { return experiments.AblationPooling(*seed) },
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e16", "e17", "e18", "e19", "e20",
		"a1", "a2", "a3", "a4", "a5", "a6", "a7"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "wfmsbench: unknown experiment %q (known: %s, all)\n", id, strings.Join(order, ", "))
				return 2
			}
			ids = append(ids, id)
		}
	}

	for i, id := range ids {
		tbl, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfmsbench: %s: %v\n", id, err)
			return 1
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tbl.Format())
	}
	return 0
}

// runSolverBench runs the E16 solver-scaling sweep, prints the table,
// and writes the raw measurement rows as JSON (BENCH_solver.json).
func runSolverBench(path string, reduced bool) int {
	rows, tbl, err := experiments.SolverBench(reduced)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Print(tbl.Format())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
	return 0
}

// runServingBench runs the E18 serving throughput bench, prints the
// table, and writes the raw phase rows as JSON (BENCH_serving.json).
func runServingBench(path, dir string, reduced bool) int {
	rows, tbl, err := experiments.ServingBench(dir, reduced)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Print(tbl.Format())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
	return 0
}

// runReconfigBench runs the E19 reconfiguration-loop bench, prints the
// table, and writes the raw rows as JSON (BENCH_reconfig.json).
func runReconfigBench(path, dir string, reduced bool) int {
	rows, tbl, err := experiments.ReconfigBench(dir, reduced)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Print(tbl.Format())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
	return 0
}

// runNetDiffBench runs the E20 collapse-bias bench, prints the table,
// and writes the raw rows as JSON (BENCH_netdiff.json).
func runNetDiffBench(path, dir string, reduced bool) int {
	rows, tbl, err := experiments.NetDiffBench(dir, reduced)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Print(tbl.Format())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
	return 0
}

// runCorpusBench runs the E17 corpus solver sweep, prints the table, and
// writes the raw measurement rows as JSON (BENCH_corpus.json).
func runCorpusBench(path, dir string) int {
	rows, tbl, err := experiments.CorpusBench(dir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Print(tbl.Format())
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wfmsbench:", err)
		return 1
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
	return 0
}
