// Command wfmsrun executes workflow instances on the mini-WFMS runtime
// and writes the audit trail as JSON lines — the raw material for
// wfmsadvisor's recalibration and for calibrate.DiscoverWorkflow.
//
// Usage:
//
//	wfmsconfig -workload loan -rate 1 -export-spec > system.json
//	wfmsrun -spec system.json -instances 500 -trail audit.jsonl
//	wfmsadvisor -spec system.json -config 2,2,3 -trail audit.jsonl -max-unavail 1e-5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"performa/internal/engine"
	"performa/internal/wfjson"
)

func main() {
	var (
		specFile  = flag.String("spec", "", "JSON system specification (required)")
		wfIndex   = flag.Int("workflow", 0, "workflow index within the spec")
		instances = flag.Int("instances", 200, "instances to execute")
		trailFile = flag.String("trail", "", "output JSON-lines trail path (default stdout)")
		timeScale = flag.Float64("time-scale", 0.001, "wall seconds per model time unit")
		seed      = flag.Uint64("seed", 42, "random seed")
		workers   = flag.Int("workers", 256, "application workers, worklist users, and replica slots per type")
	)
	flag.Parse()
	if *specFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*specFile)
	if err != nil {
		fail(err)
	}
	env, flows, err := wfjson.Decode(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *wfIndex < 0 || *wfIndex >= len(flows) {
		fail(fmt.Errorf("workflow index %d out of range [0,%d)", *wfIndex, len(flows)))
	}
	flow := flows[*wfIndex]

	appWorkers := map[string]int{}
	slots := map[string]int{}
	for _, st := range env.Types() {
		appWorkers[st.Name] = *workers
		slots[st.Name] = *workers
	}
	rt := engine.New(env, engine.Options{
		TimeScale:      *timeScale,
		Seed:           *seed,
		AppWorkers:     appWorkers,
		Users:          *workers,
		ServerReplicas: slots,
	})

	interarrival := 0.0
	if flow.ArrivalRate > 0 {
		interarrival = 1 / flow.ArrivalRate
	}
	done, err := rt.RunInstances(context.Background(), flow, *instances, interarrival)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wfmsrun: executed %d/%d instances of %q (%d audit records)\n",
		done, *instances, flow.Name, rt.Trail().Len())

	out := os.Stdout
	if *trailFile != "" {
		out, err = os.Create(*trailFile)
		if err != nil {
			fail(err)
		}
		defer out.Close()
	}
	if err := rt.Trail().WriteJSONLines(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfmsrun:", err)
	os.Exit(1)
}
