// Command wfmsconfig is the configuration tool of the paper's Section 7:
// it assesses a given configuration of a distributed WFMS or recommends a
// near-minimum-cost configuration for specified performability and
// availability goals.
//
// Usage:
//
//	wfmsconfig -workload mix -rate 6 -assess 2,2,3
//	wfmsconfig -workload ep -rate 5 -max-wait 0.005 -max-unavail 1e-5
//	wfmsconfig -workload ep -rate 5 -max-unavail 1e-6 -exhaustive
//
// The built-in workloads run on the paper's three-server-type environment
// (time unit: minutes): ep (the Figure 3 electronic purchase), order
// (TPC-C-flavoured), loan (interactive loan approval), or mix (all three
// splitting the rate 50/30/20).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"performa"
	"performa/internal/ctmc"
	"performa/internal/performability"
	"performa/internal/spec"
	"performa/internal/wfjson"
	"performa/internal/wfmserr"
	"performa/internal/workload"
)

func main() {
	code := func() (code int) {
		// Residual panics (bugs the typed-error routes did not intercept)
		// must cost a one-line diagnostic and a non-zero exit, not a raw
		// Go trace. The closure keeps os.Exit outside the deferred scope
		// so run()'s own defers (profile writers) still flush.
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(os.Stderr, "wfmsconfig: internal error: %v\n", p)
				code = 2
			}
		}()
		return run()
	}()
	os.Exit(code)
}

// run holds main's body so the pprof defers flush before the process
// exits (os.Exit skips deferred calls).
func run() int {
	var (
		workloadName = flag.String("workload", "mix", "built-in workflow mix: ep, order, loan, or mix")
		specFile     = flag.String("spec", "", "JSON system specification (overrides -workload/-rate; see internal/wfjson)")
		rate         = flag.Float64("rate", 6, "total workflow arrival rate per minute")
		assessSpec   = flag.String("assess", "", "assess this configuration (e.g. 2,2,3) instead of planning")
		maxWait      = flag.Float64("max-wait", 0, "waiting-time goal in minutes (0 = none)")
		maxUnavail   = flag.Float64("max-unavail", 0, "unavailability goal (0 = none)")
		exhaustive   = flag.Bool("exhaustive", false, "use the exhaustive optimal search instead of the greedy heuristic")
		maxReplicas  = flag.Int("max-replicas", 8, "per-type replication cap for the search")
		workers      = flag.Int("workers", 0, "assessment worker-pool size (0 = all CPUs, 1 = sequential)")
		solverName   = flag.String("solver", "auto", "steady-state solver strategy: auto, dense, gauss_seidel, jacobi, power, or bicgstab")
		exportSpec   = flag.Bool("export-spec", false, "print the selected built-in workload as a JSON spec and exit")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfmsconfig:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wfmsconfig:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfmsconfig:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is representative
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wfmsconfig:", err)
			}
		}()
	}

	if *exportSpec {
		env := workload.PaperEnvironment()
		flows, err := builtinWorkflows(*workloadName, *rate)
		if err != nil {
			return fail(err)
		}
		if err := wfjson.Encode(os.Stdout, env, flows); err != nil {
			return fail(err)
		}
		return 0
	}

	var sys *performa.System
	var err error
	if *specFile != "" {
		sys, err = loadSystem(*specFile)
	} else {
		sys, err = buildSystem(*workloadName, *rate)
	}
	if err != nil {
		return fail(err)
	}

	if *assessSpec != "" {
		cfg, err := parseConfig(*assessSpec, sys.Env().K())
		if err != nil {
			return fail(err)
		}
		return assess(sys, cfg)
	}

	solver, err := ctmc.ParseSolverStrategy(*solverName)
	if err != nil {
		return fail(err)
	}
	goals := performa.Goals{MaxWaiting: *maxWait, MaxUnavailability: *maxUnavail}
	cons := performa.Constraints{}
	if *maxReplicas > 0 {
		caps := make([]int, sys.Env().K())
		for i := range caps {
			caps[i] = *maxReplicas
		}
		cons.MaxReplicas = caps
	}
	opts := performa.PlannerOptions{
		Performability: performability.Options{Policy: performability.ExcludeDown, Solver: solver},
		Workers:        *workers,
	}
	var rec *performa.Recommendation
	if *exhaustive {
		rec, err = sys.PlanExhaustive(goals, cons, opts)
	} else {
		rec, err = sys.Plan(goals, cons, opts)
	}
	if err != nil {
		return fail(err)
	}

	fmt.Printf("recommended configuration: %s  (cost: %d servers, %d candidate evaluations)\n",
		rec.Config, rec.Cost, rec.Evaluations)
	if total := rec.Cache.Hits + rec.Cache.Misses; total > 0 {
		fmt.Printf("degraded-state cache: %d of %d state evaluations served from cache (%d model solves)\n",
			rec.Cache.Hits, total, rec.Cache.Misses)
	}
	for x := 0; x < sys.Env().K(); x++ {
		fmt.Printf("  %-12s × %d\n", sys.Env().Type(x).Name, rec.Config.Replicas[x])
	}
	if len(rec.Trace) > 0 {
		fmt.Println("greedy trace:")
		for _, step := range rec.Trace {
			action := "accept"
			if step.AddedType >= 0 {
				action = fmt.Sprintf("add %s (%s)", sys.Env().Type(step.AddedType).Name, step.Reason)
			}
			fmt.Printf("  %-10s maxWait=%-10.5g unavail=%-10.3e → %s\n",
				step.Config, step.MaxWaiting, step.Unavailability, action)
		}
	}
	return assess(sys, rec.Config)
}

func loadSystem(path string) (*performa.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	env, flows, err := wfjson.Decode(f)
	if err != nil {
		return nil, err
	}
	return performa.NewSystem(env, flows...)
}

func builtinWorkflows(name string, rate float64) ([]*spec.Workflow, error) {
	switch strings.ToLower(name) {
	case "ep":
		return []*spec.Workflow{workload.EPWorkflow(rate)}, nil
	case "order":
		return []*spec.Workflow{workload.OrderWorkflow(rate)}, nil
	case "loan":
		return []*spec.Workflow{workload.LoanWorkflow(rate)}, nil
	case "mix":
		return []*spec.Workflow{
			workload.EPWorkflow(rate * 0.5),
			workload.OrderWorkflow(rate * 0.3),
			workload.LoanWorkflow(rate * 0.2),
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want ep, order, loan, or mix)", name)
	}
}

func buildSystem(name string, rate float64) (*performa.System, error) {
	flows, err := builtinWorkflows(name, rate)
	if err != nil {
		return nil, err
	}
	return performa.NewSystem(workload.PaperEnvironment(), flows...)
}

func parseConfig(s string, k int) (performa.Configuration, error) {
	parts := strings.Split(s, ",")
	if len(parts) != k {
		return performa.Configuration{}, fmt.Errorf("configuration %q has %d entries for %d server types", s, len(parts), k)
	}
	replicas := make([]int, k)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return performa.Configuration{}, fmt.Errorf("bad replication degree %q", p)
		}
		replicas[i] = v
	}
	return performa.Configuration{Replicas: replicas}, nil
}

func assess(sys *performa.System, cfg performa.Configuration) int {
	as, err := sys.Assess(cfg)
	if err != nil {
		return fail(err)
	}
	env := sys.Env()
	fmt.Printf("\nassessment of %s\n", cfg)
	fmt.Printf("  %-12s %-8s %-10s %-12s %-12s\n", "server type", "replicas", "util", "wait [min]", "W^Y [min]")
	for x := 0; x < env.K(); x++ {
		wy := math.NaN()
		if as.Performability != nil {
			wy = as.Performability.Waiting[x]
		}
		fmt.Printf("  %-12s %-8d %-10.4f %-12.5g %-12.5g\n",
			env.Type(x).Name, cfg.Replicas[x],
			as.Performance.Utilization[x], as.Performance.Waiting[x], wy)
	}
	fmt.Printf("  bottleneck: %s; max sustainable throughput: %.3f workflows/min\n",
		env.Type(as.Performance.Bottleneck).Name, as.Performance.MaxWorkflowThroughput)
	fmt.Printf("  availability: %.9f  (downtime %s per year)\n",
		as.Availability.Availability, humanDowntime(as.Availability.DowntimeHoursPerYear))
	if as.Performability != nil {
		fmt.Printf("  performability max waiting: %.5g min (degraded-state probability %.3e)\n",
			as.Performability.MaxWaiting(), as.Performability.DegradationShare)
	}
	return 0
}

func humanDowntime(hoursPerYear float64) string {
	switch {
	case hoursPerYear >= 1:
		return fmt.Sprintf("%.1f h", hoursPerYear)
	case hoursPerYear*60 >= 1:
		return fmt.Sprintf("%.1f min", hoursPerYear*60)
	default:
		return fmt.Sprintf("%.1f s", hoursPerYear*3600)
	}
}

// fail reports the error as a one-line diagnostic (prefixed with its
// taxonomy code when typed) and returns the exit code, letting run()'s
// deferred profile writers flush before the process exits.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "wfmsconfig:", wfmserr.Describe(err))
	return 1
}
