// Command wfmsdot renders workflow specifications as Graphviz DOT: the
// statechart itself or the CTMC it maps onto (the paper's Figure 3 and
// Figure 4 views).
//
// Usage:
//
//	wfmsdot -workload ep -view chart | dot -Tsvg > ep.svg
//	wfmsdot -workload ep -view ctmc
//	wfmsdot -spec system.json -view chart
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"performa/internal/spec"
	"performa/internal/wfjson"
	"performa/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "ep", "built-in workflow: ep, epx, order, or loan")
		specFile     = flag.String("spec", "", "JSON system specification (overrides -workload)")
		view         = flag.String("view", "chart", "what to render: chart (statechart) or ctmc (mapped Markov chain)")
		index        = flag.Int("workflow", 0, "workflow index within a -spec document")
	)
	flag.Parse()

	env, flow, err := selectWorkflow(*workloadName, *specFile, *index)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmsdot:", err)
		os.Exit(1)
	}

	switch strings.ToLower(*view) {
	case "chart":
		fmt.Print(flow.Chart.DOT())
	case "ctmc":
		m, err := spec.Build(flow, env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfmsdot:", err)
			os.Exit(1)
		}
		fmt.Print(m.Chain.DOT())
	default:
		fmt.Fprintf(os.Stderr, "wfmsdot: unknown view %q (want chart or ctmc)\n", *view)
		os.Exit(2)
	}
}

func selectWorkflow(name, specFile string, index int) (*spec.Environment, *spec.Workflow, error) {
	if specFile != "" {
		f, err := os.Open(specFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		env, flows, err := wfjson.Decode(f)
		if err != nil {
			return nil, nil, err
		}
		if index < 0 || index >= len(flows) {
			return nil, nil, fmt.Errorf("workflow index %d out of range [0,%d)", index, len(flows))
		}
		return env, flows[index], nil
	}
	switch strings.ToLower(name) {
	case "ep":
		return workload.PaperEnvironment(), workload.EPWorkflow(1), nil
	case "epx":
		return workload.ExtendedEnvironment(), workload.EPDistributed(1), nil
	case "order":
		return workload.PaperEnvironment(), workload.OrderWorkflow(1), nil
	case "loan":
		return workload.PaperEnvironment(), workload.LoanWorkflow(1), nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q (want ep, epx, order, or loan)", name)
	}
}
